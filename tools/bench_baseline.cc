// bench_baseline: the machine-readable performance baseline for the
// simulator's hot paths.
//
// Measures, for the paper's CFS/ULE pair:
//   - events_per_sec  : simulated events per wall-second on the standard
//                       micro_sched_ops throughput workload (64 mixed
//                       sleep/compute threads on 8 flat cores)
//   - allocs_per_event: heap allocations per simulated event, counted by the
//                       interposing operator-new counter in this binary
//   - ns_per_pick     : wall ns per SelectTaskRq placement decision on a
//                       half-loaded 32-core Opteron (the paper's machine)
//   - ns_per_balance  : wall ns per idle balance pass (OnCoreIdle) on a
//                       fully loaded Opteron with nothing stealable
// plus a scheduler-independent calibration rate (a fixed integer spin loop)
// so results can be compared across machines as `events_per_calib`.
//
// Every other registered scheduler class (mlfq, eevdf, ...) gets a *micro*
// leg — events/sec, allocs/event, ns/pick, ns/balance on the same probes —
// recorded under `<metric>_<id>` keys. The CFS/ULE keys and their committed
// values are untouched; --check validates a micro leg only when its keys are
// present in the baseline file, so older files keep working.
//
// Usage:
//   bench_baseline --out=BENCH_schedsim.json            measure, write JSON
//   bench_baseline --check --baseline=BENCH_schedsim.json
//       re-measure and fail (exit 1) when the normalized events/sec of
//       either scheduler regressed more than --tolerance (default 0.15)
//       against the committed file, or allocs/event grew.
//
// The committed BENCH_schedsim.json keeps two sections: "before" (the scan-
// based, allocating implementation this tool was first run against) and
// "current" (refreshed whenever a perf PR lands). CI runs --check at smoke
// scale; docs/PERFORMANCE.md describes how to refresh the file.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/flags.h"
#include "src/core/scenarios.h"
#include "src/core/spec.h"
#include "src/metrics/decision_log.h"
#include "src/sched/machine.h"
#include "src/sched/registry.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/topo/topology.h"
#include "src/workload/script.h"
#include "tests/minijson.h"
#include "tools/baseline_check.h"

// ---- interposing allocation counter ----------------------------------------
// Counts every operator-new in the process. Only deltas taken around the
// measured region are reported, so setup allocations do not pollute the
// number.

static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace schedbattle {
namespace {

uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

double WallSeconds(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::unique_ptr<Scheduler> MakeSched(const std::string& name) {
  SchedKind kind = SchedKind::kCfs;
  if (!ParseSchedKind(name, &kind)) {
    std::fprintf(stderr, "unknown scheduler '%s' (registered: %s)\n", name.c_str(),
                 SchedulerRegistry::Instance().IdList().c_str());
    std::exit(2);
  }
  const ExperimentConfig defaults;  // every factory reads its compiled-in tunables
  return SchedulerRegistry::Instance().Of(kind).make(defaults);
}

// Fixed integer spin loop; its rate captures the host machine's single-core
// speed so events/sec can be normalized into a machine-portable ratio.
// Best-of-3 like every other measurement here: one descheduled sample would
// otherwise inflate every normalized ratio in the file.
double CalibrationRate() {
  const uint64_t kIters = 50'000'000;
  double best = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    uint64_t x = 88172645463325252ULL;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    const auto t1 = std::chrono::steady_clock::now();
    volatile uint64_t sink = x;
    (void)sink;
    best = std::max(best, static_cast<double>(kIters) / WallSeconds(t0, t1));
  }
  return best;
}

const char* const kScheds[2] = {"cfs", "ule"};
// Registered classes outside the paper's pair: full-suite coverage stays on
// CFS/ULE (the committed baseline history), these get the micro leg only.
const char* const kMicroScheds[2] = {"mlfq", "eevdf"};

struct ThroughputResult {
  double events_per_sec = 0;
  // Raw window totals, and the rate in *process CPU time*
  // (CLOCK_PROCESS_CPUTIME_ID). Steal time and involuntary descheduling on
  // shared hosts do not count toward CPU time, so it is far less noisy than
  // the wall clock; the observer gate aggregates these raw totals across
  // many short windows for that reason. Frequency scaling still shows up.
  double events = 0;
  double cpu_seconds = 0;
  double events_per_cpu_sec = 0;
  double allocs_per_event = 0;
  double ticks_fired = 0;
  double ticks_elided = 0;
  double batch_updates = 0;
};

// The micro_sched_ops workload: 64 mixed sleep/compute threads on 8 flat
// cores. Loops are effectively unbounded so the machine stays loaded for the
// whole measured window. With `attach_log` a schedscope DecisionLog observes
// the run (the observer-overhead gate measures its attached cost); a JSONL
// sample of the captured records lands in *log_sample when non-null.
ThroughputResult MeasureThroughput(const std::string& sched, double scale,
                                   bool attach_log = false,
                                   std::string* log_sample = nullptr) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(8), MakeSched(sched));
  machine.Boot();
  std::unique_ptr<DecisionLog> log;
  auto script = ScriptBuilder()
                    .Loop(1'000'000)
                    .ComputeFn([](ScriptEnv& env) {
                      return static_cast<SimDuration>(env.rng.NextExponential(200000.0));
                    })
                    .SleepFn([](ScriptEnv& env) {
                      return static_cast<SimDuration>(env.rng.NextExponential(300000.0));
                    })
                    .EndLoop()
                    .Build();
  for (int i = 0; i < 64; ++i) {
    ThreadSpec spec;
    spec.name = "w";
    spec.body = MakeScriptBody(script, Rng(i + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  // Warm up allocator pools and caches before the measured window. The
  // decision log attaches *after* warmup so the measured window starts with
  // a fresh log, giving the observer gate a fixed, window-sized capture
  // instead of one inflated by warmup records.
  engine.RunUntil(Milliseconds(200));
  if (attach_log) {
    log = std::make_unique<DecisionLog>(&machine);
  }
  const uint64_t events_before = engine.events_executed();
  const uint64_t allocs_before = AllocCount();
  timespec c0;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c0);
  const auto t0 = std::chrono::steady_clock::now();
  engine.RunUntil(Milliseconds(200) + static_cast<SimDuration>(Seconds(5) * scale));
  const auto t1 = std::chrono::steady_clock::now();
  timespec c1;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &c1);
  ThroughputResult r;
  const double events = static_cast<double>(engine.events_executed() - events_before);
  r.events_per_sec = events / WallSeconds(t0, t1);
  const double cpu_sec =
      static_cast<double>(c1.tv_sec - c0.tv_sec) + 1e-9 * static_cast<double>(c1.tv_nsec - c0.tv_nsec);
  r.events = events;
  r.cpu_seconds = cpu_sec;
  r.events_per_cpu_sec = cpu_sec > 0 ? events / cpu_sec : r.events_per_sec;
  r.allocs_per_event = static_cast<double>(AllocCount() - allocs_before) / events;
  if (log != nullptr) {
    log->Detach();
    if (log_sample != nullptr) {
      *log_sample = log->ToJsonl(/*max_records=*/200'000);
    }
  }
  return r;
}

// The observer-overhead gate: the same throughput workload measured detached
// and with a DecisionLog attached, as many short alternating windows whose
// events and CPU time are summed per mode. Two choices make this gate
// reproducible on noisy shared hosts where a naive wall-clock A/B swings by
// +-10%:
//
//  - Each window attaches a fresh log after warmup and captures ~1 MiB of
//    records into an already-faulted slab, so both modes have the same
//    (cache-local) noise exposure. The gate therefore measures the hot
//    capture path — feature assembly and the direct slab append — which is
//    the per-event cost a user pays.
//  - Rates are computed from *CPU time* summed over all windows per mode,
//    so host steal time and descheduling do not count, and alternating
//    D/A/D/A windows keep both sums inside the same drift epoch.
//
// Attached logging must cost less than `tolerance` of events per CPU-second
// (CI holds this at 5%); a JSONL sample of the attached records is written
// to `sample_path` when set.
int ObserverGate(int runs, double scale, double tolerance, const std::string& sample_path) {
  // ~0.15 simulated seconds per window: ~13k engine events, ~1 MiB of
  // decision records. `runs` scales the number of window pairs; 10 pairs
  // per run gives the summed CPU rates sub-1% repeatability at the default
  // CI setting.
  const double kWindowScale = 0.03;
  (void)scale;
  const int pairs = std::max(1, runs) * 10;
  DecisionSink::WarmSlabPool(2);
  int failures = 0;
  for (int i = 0; i < 2; ++i) {
    double d_events = 0, d_cpu = 0, a_events = 0, a_cpu = 0;
    std::vector<double> pair_cost;
    std::string sample;
    for (int p = 0; p < pairs; ++p) {
      const ThroughputResult d = MeasureThroughput(kScheds[i], kWindowScale);
      std::string* want =
          (p == 0 && i == 0 && !sample_path.empty() && sample.empty()) ? &sample : nullptr;
      const ThroughputResult a =
          MeasureThroughput(kScheds[i], kWindowScale, /*attach_log=*/true, want);
      d_events += d.events;
      d_cpu += d.cpu_seconds;
      a_events += a.events;
      a_cpu += a.cpu_seconds;
      pair_cost.push_back(
          d.events_per_cpu_sec > 0 ? 1.0 - a.events_per_cpu_sec / d.events_per_cpu_sec : 0.0);
    }
    const double detached = d_cpu > 0 ? d_events / d_cpu : 0;
    const double attached = a_cpu > 0 ? a_events / a_cpu : 0;
    // Verdict: median of per-pair costs. The two windows of a pair run
    // back-to-back inside the same host-contention epoch, so each ratio is
    // internally consistent, and the median over tens of pairs rejects the
    // epochs that straddle a pair boundary. (The summed rates are printed
    // for context but can be skewed by a mid-sequence epoch shift.)
    std::sort(pair_cost.begin(), pair_cost.end());
    const size_t np = pair_cost.size();
    const double cost = np % 2 == 1 ? pair_cost[np / 2]
                                    : 0.5 * (pair_cost[np / 2 - 1] + pair_cost[np / 2]);
    const bool ok = cost < tolerance;
    std::printf("%s observer overhead: detached %.3g ev/cpu-s, attached %.3g ev/cpu-s, "
                "pair cost median %.2f%% [q1 %.2f%% q3 %.2f%%, %d pairs] "
                "(tolerance %.0f%%) %s\n",
                kScheds[i], detached, attached, 100.0 * cost, 100.0 * pair_cost[np / 4],
                100.0 * pair_cost[(3 * np) / 4], static_cast<int>(np), 100.0 * tolerance,
                ok ? "ok" : "REGRESSED");
    if (!ok) {
      ++failures;
    }
    if (!sample.empty()) {
      std::ofstream out(sample_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", sample_path.c_str());
        return 1;
      }
      out << sample;
      std::printf("wrote decision-log sample to %s\n", sample_path.c_str());
    }
  }
  return failures > 0 ? 1 : 0;
}

// The idle-heavy suite: 4 mostly-sleeping threads on the paper's 32-core
// Opteron, so ~28 cores sit permanently idle and the busy ones run solo.
// This is the workload NOHZ-style tick elision targets: with the tick fired
// eagerly the event stream is dominated by no-op ticks (32 cores worth),
// with elision they collapse into batched catch-ups. Throughput is reported
// as *tick-equivalent* events/sec — (events executed + ticks elided) /
// wall — so tickless on and off rates measure the same simulated work and
// stay directly comparable.
ThroughputResult MeasureIdleThroughput(const std::string& sched, double scale) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Opteron6172(), MakeSched(sched));
  machine.Boot();
  auto script = ScriptBuilder()
                    .Loop(1'000'000)
                    .Compute(Microseconds(50))
                    .SleepFn([](ScriptEnv& env) {
                      return Milliseconds(5) +
                             static_cast<SimDuration>(env.rng.NextExponential(5'000'000.0));
                    })
                    .EndLoop()
                    .Build();
  for (int i = 0; i < 4; ++i) {
    ThreadSpec spec;
    spec.name = "idler";
    spec.body = MakeScriptBody(script, Rng(i + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  engine.RunUntil(Milliseconds(200));
  machine.CatchUpTicks();  // settle before snapshotting the counters
  const uint64_t events_before = engine.events_executed();
  const uint64_t elided_before = machine.tick_elision().ticks_elided;
  const auto t0 = std::chrono::steady_clock::now();
  engine.RunUntil(Milliseconds(200) + static_cast<SimDuration>(Seconds(5) * scale));
  machine.CatchUpTicks();
  const auto t1 = std::chrono::steady_clock::now();
  ThroughputResult r;
  const double events = static_cast<double>(engine.events_executed() - events_before) +
                        static_cast<double>(machine.tick_elision().ticks_elided - elided_before);
  r.events_per_sec = events / WallSeconds(t0, t1);
  r.ticks_fired = static_cast<double>(machine.tick_elision().ticks_fired);
  r.ticks_elided = static_cast<double>(machine.tick_elision().ticks_elided);
  r.batch_updates = static_cast<double>(machine.tick_elision().batch_updates);
  return r;
}

// The sharded-serving suite: the 1024-core NUMA box (Numa1024) fully loaded
// with one pinned infinite spinner per core — the topology and load shape of
// the loadbalance-4096 scenario after it settles. Every event is core-local
// (certified pure-compute completions, busy-core ticks), so the engine's
// parallel windows cover nearly the whole run; the 1/2/4-shard legs measure
// what conservative time-window sync buys. On a single-CPU host the shards
// drain sequentially (bit-identical, no wall-clock win) — `host_cpus` in the
// JSON says which regime a committed number came from.
ThroughputResult MeasureShardedServing(const std::string& sched, double scale, int shards,
                                       QueueKind queue = QueueKind::kHeap) {
  SimEngine engine;
  engine.SetQueueKind(queue);
  const CpuTopology topo = CpuTopology::Numa1024();
  if (shards > 1) {
    engine.ConfigureShards(ShardPlan::Contiguous(topo.num_cores(), shards));
  }
  Machine machine(&engine, topo, MakeSched(sched));
  machine.Boot();
  const auto script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
  for (CoreId c = 0; c < topo.num_cores(); ++c) {
    ThreadSpec spec;
    spec.name = "serve";
    spec.affinity = CpuMask::Single(c);
    spec.body = MakeScriptBody(script, Rng(c + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  engine.RunUntil(Milliseconds(50));
  const uint64_t events_before = engine.events_executed();
  const auto t0 = std::chrono::steady_clock::now();
  engine.RunUntil(Milliseconds(50) + static_cast<SimDuration>(Seconds(2) * scale));
  const auto t1 = std::chrono::steady_clock::now();
  ThroughputResult r;
  r.events = static_cast<double>(engine.events_executed() - events_before);
  r.events_per_sec = r.events / WallSeconds(t0, t1);
  return r;
}

// The open-loop serving suite: the serve-smoke preset (16 cores, apache
// model at ~80% utilization, Poisson arrivals) executed end to end through
// ExecuteSpec — arrival events, pipe wakes through the full scheduler wake
// path, request-latency histograms and SLO evaluation included. This is the
// serving-fleet hot path the closed-loop probes above never touch; the rate
// is served requests per wall-second.
ThroughputResult MeasureOpenLoopServing(const std::string& sched, double scale) {
  SchedKind kind = SchedKind::kCfs;
  if (!ParseSchedKind(sched, &kind)) {
    std::exit(2);
  }
  // Fixed size, independent of --scale: the rate divides by wall time that
  // includes per-run setup (boot, 64 worker spawns), so committed and CI
  // measurements must run the same request volume to be comparable. 8x the
  // preset window = 4s of arrivals, ~12.8k requests, tens of ms of wall.
  (void)scale;
  const ExperimentSpec spec = ServeSpec("serve-smoke", kind, 42, 8.0);
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult result = ExecuteSpec(spec);
  const auto t1 = std::chrono::steady_clock::now();
  ThroughputResult r;
  r.events = static_cast<double>(result.apps[0].ops);
  r.events_per_sec = r.events / WallSeconds(t0, t1);
  return r;
}

// Wall ns per steady-state (pop + post) pair on a bare EventQueue holding
// 256k pending events — the deep-queue regime of the serve1024 presets,
// isolated from the machine/scheduler layers. This is where the heap pays
// O(log n) sifts per operation and the timing wheel stays O(1); the shallow
// regime is covered by the events_per_calib legs (a few hundred pending).
double MeasureQueueOps(QueueKind queue, double scale) {
  EventQueue q(queue);
  Rng rng(42);
  uint64_t sink = 0;
  constexpr int kDepth = 262144;
  // Arrival spread ~10ms: deep enough that level-1/2 cascades and heap
  // depth are both exercised, far from the overflow horizon.
  const auto offset = [&rng]() -> SimDuration {
    return 1 + static_cast<SimDuration>(rng.NextBelow(Milliseconds(10)));
  };
  for (int i = 0; i < kDepth; ++i) {
    q.Post(offset(), [&sink] { ++sink; });
  }
  const int iters = static_cast<int>(400'000 * scale) + 50'000;
  SimTime when = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    EventCallback cb = q.PopNext(&when);
    cb();
    q.Post(when + offset(), [&sink] { ++sink; });
  }
  const auto t1 = std::chrono::steady_clock::now();
  q.Clear();
  return WallSeconds(t0, t1) * 1e9 / iters;
}

// Spawns a thread that computes for `work` and then blocks forever.
SimThread* SpawnHog(Machine* machine, const CpuMask& affinity, SimDuration work) {
  ThreadSpec spec;
  spec.name = "hog";
  spec.affinity = affinity;
  spec.body = MakeScriptBody(ScriptBuilder().Compute(work).Sleep(Seconds(3600)).Build(), Rng(7));
  return machine->Spawn(std::move(spec), nullptr);
}

// Wall ns per wakeup placement decision on a half-loaded Opteron: cores 0-7
// (one full LLC) run pinned hogs, the rest of the machine is idle, and the
// probe thread's previous core is busy, so every pick walks the placement
// path (idle-sibling search under CFS, the affine-group scan under ULE).
double MeasurePickNs(const std::string& sched, double scale) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Opteron6172(), MakeSched(sched));
  machine.Boot();
  for (CoreId c = 0; c < 8; ++c) {
    SpawnHog(&machine, CpuMask::Single(c), Seconds(3600));
  }
  // The probe: runs briefly on core 0's LLC, then blocks. Restricting its
  // initial affinity pins the placement; the wide mask afterwards restores
  // the full search space for the measured picks.
  ThreadSpec spec;
  spec.name = "probe";
  spec.affinity = CpuMask::Single(1);
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Microseconds(50)).Sleep(Seconds(3600)).Build(),
                             Rng(9));
  SimThread* probe = machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Milliseconds(20));  // probe has blocked; affinity window expired
  machine.SetAffinity(probe, CpuMask::AllOf(machine.num_cores()));

  const int iters = static_cast<int>(200'000 * scale) + 10'000;
  // Origin core 9 is idle, so there is no waker and the pick is a pure
  // placement query: state is only mutated through the modeled scan cost.
  CoreId sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    sink ^= machine.scheduler().SelectTaskRq(probe, /*origin=*/9, EnqueueKind::kWakeup);
  }
  const auto t1 = std::chrono::steady_clock::now();
  volatile CoreId s = sink;
  (void)s;
  return WallSeconds(t0, t1) * 1e9 / iters;
}

// Wall ns per idle balance pass on a fully loaded Opteron where every other
// core runs exactly one (unstealable) running thread: the pass scans its
// domains, finds nothing transferable, and leaves the machine unchanged.
double MeasureBalanceNs(const std::string& sched, double scale) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Opteron6172(), MakeSched(sched));
  machine.Boot();
  const int n = machine.num_cores();
  for (CoreId c = 0; c < n - 1; ++c) {
    SpawnHog(&machine, CpuMask::Single(c), Seconds(3600));
  }
  engine.RunUntil(Milliseconds(5));
  const CoreId idle_core = n - 1;
  const int iters = static_cast<int>(100'000 * scale) + 5'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    machine.scheduler().OnCoreIdle(idle_core);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return WallSeconds(t0, t1) * 1e9 / iters;
}

struct Metrics {
  double calib_rate = 0;
  double events_per_sec[2] = {0, 0};     // cfs, ule
  double allocs_per_event[2] = {0, 0};
  double ns_per_pick[2] = {0, 0};
  double ns_per_balance[2] = {0, 0};
  // Idle-heavy suite (tick-equivalent events/sec) plus its tick-elision
  // telemetry from the best run.
  double idle_events_per_sec[2] = {0, 0};
  double ticks_fired[2] = {0, 0};
  double ticks_elided[2] = {0, 0};
  double batch_updates[2] = {0, 0};
  // Sharded-serving suite: events/sec at 1, 2 and 4 engine shards on the
  // fully loaded 1024-core box, plus the host's CPU count (the speedup is
  // only meaningful when host_cpus >= shards).
  double serving_events_per_sec[2][3] = {{0, 0, 0}, {0, 0, 0}};
  // The same serving legs on the timing-wheel event queue (--queue=wheel);
  // the heap numbers above stay the like-for-like committed reference.
  double serving_events_per_sec_wheel[2][3] = {{0, 0, 0}, {0, 0, 0}};
  // Bare event-queue steady state at 256k pending: wall ns per (pop + post)
  // pair, per backend (heap, wheel).
  double queue_post_pop_ns[2] = {0, 0};
  // Open-loop serving suite: served requests per wall-second through the
  // full serve-smoke scenario (arrivals, pipe wakes, SLO evaluation).
  double openloop_requests_per_sec[2] = {0, 0};
  int host_cpus = 0;
  // Micro legs for the non-paper classes (kMicroScheds order).
  double micro_events_per_sec[2] = {0, 0};
  double micro_allocs_per_event[2] = {0, 0};
  double micro_ns_per_pick[2] = {0, 0};
  double micro_ns_per_balance[2] = {0, 0};

  double events_per_calib(int i) const {
    return calib_rate > 0 ? events_per_sec[i] / calib_rate : 0;
  }
  double idle_events_per_calib(int i) const {
    return calib_rate > 0 ? idle_events_per_sec[i] / calib_rate : 0;
  }
  double micro_events_per_calib(int i) const {
    return calib_rate > 0 ? micro_events_per_sec[i] / calib_rate : 0;
  }
  double openloop_requests_per_calib(int i) const {
    return calib_rate > 0 ? openloop_requests_per_sec[i] / calib_rate : 0;
  }
  // Queue ops per calibration op (hardware-normalized, so --check can gate
  // it across machines): (pairs per second) / calib_rate.
  double queue_ops_per_calib(int i) const {
    return calib_rate > 0 && queue_post_pop_ns[i] > 0
               ? (1e9 / queue_post_pop_ns[i]) / calib_rate
               : 0;
  }
};

// Runs every measurement `runs` times and keeps the best (throughput) /
// smallest (latency) observation: the minimum-noise estimator for
// quiet-machine microbenchmarks.
Metrics MeasureAll(int runs, double scale) {
  Metrics m;
  m.calib_rate = CalibrationRate();
  for (int i = 0; i < 2; ++i) {
    for (int r = 0; r < runs; ++r) {
      const ThroughputResult t = MeasureThroughput(kScheds[i], scale);
      if (t.events_per_sec > m.events_per_sec[i]) {
        m.events_per_sec[i] = t.events_per_sec;
        m.allocs_per_event[i] = t.allocs_per_event;
      }
      const ThroughputResult idle = MeasureIdleThroughput(kScheds[i], scale);
      if (idle.events_per_sec > m.idle_events_per_sec[i]) {
        m.idle_events_per_sec[i] = idle.events_per_sec;
        m.ticks_fired[i] = idle.ticks_fired;
        m.ticks_elided[i] = idle.ticks_elided;
        m.batch_updates[i] = idle.batch_updates;
      }
      const double pick = MeasurePickNs(kScheds[i], scale);
      if (r == 0 || pick < m.ns_per_pick[i]) {
        m.ns_per_pick[i] = pick;
      }
      const double bal = MeasureBalanceNs(kScheds[i], scale);
      if (r == 0 || bal < m.ns_per_balance[i]) {
        m.ns_per_balance[i] = bal;
      }
      static const int kShardLegs[3] = {1, 2, 4};
      for (int leg = 0; leg < 3; ++leg) {
        const ThroughputResult sv =
            MeasureShardedServing(kScheds[i], scale, kShardLegs[leg], QueueKind::kHeap);
        m.serving_events_per_sec[i][leg] =
            std::max(m.serving_events_per_sec[i][leg], sv.events_per_sec);
        const ThroughputResult svw =
            MeasureShardedServing(kScheds[i], scale, kShardLegs[leg], QueueKind::kWheel);
        m.serving_events_per_sec_wheel[i][leg] =
            std::max(m.serving_events_per_sec_wheel[i][leg], svw.events_per_sec);
      }
      const ThroughputResult ol = MeasureOpenLoopServing(kScheds[i], scale);
      m.openloop_requests_per_sec[i] =
          std::max(m.openloop_requests_per_sec[i], ol.events_per_sec);
    }
  }
  for (int i = 0; i < 2; ++i) {
    for (int r = 0; r < runs; ++r) {
      const ThroughputResult t = MeasureThroughput(kMicroScheds[i], scale);
      if (t.events_per_sec > m.micro_events_per_sec[i]) {
        m.micro_events_per_sec[i] = t.events_per_sec;
        m.micro_allocs_per_event[i] = t.allocs_per_event;
      }
      const double pick = MeasurePickNs(kMicroScheds[i], scale);
      if (r == 0 || pick < m.micro_ns_per_pick[i]) {
        m.micro_ns_per_pick[i] = pick;
      }
      const double bal = MeasureBalanceNs(kMicroScheds[i], scale);
      if (r == 0 || bal < m.micro_ns_per_balance[i]) {
        m.micro_ns_per_balance[i] = bal;
      }
    }
  }
  static const QueueKind kQueueLegs[2] = {QueueKind::kHeap, QueueKind::kWheel};
  for (int i = 0; i < 2; ++i) {
    for (int r = 0; r < runs; ++r) {
      const double ns = MeasureQueueOps(kQueueLegs[i], scale);
      if (r == 0 || ns < m.queue_post_pop_ns[i]) {
        m.queue_post_pop_ns[i] = ns;
      }
    }
  }
  m.host_cpus = static_cast<int>(std::thread::hardware_concurrency());
  return m;
}

std::string MetricsJson(const Metrics& m, int indent) {
  const std::string pad(indent, ' ');
  std::ostringstream os;
  os.precision(6);
  os << pad << "\"calibration_ops_per_sec\": " << m.calib_rate;
  for (int i = 0; i < 2; ++i) {
    os << ",\n" << pad << "\"events_per_sec_" << kScheds[i] << "\": " << m.events_per_sec[i];
    os << ",\n"
       << pad << "\"events_per_calib_" << kScheds[i] << "\": " << m.events_per_calib(i);
    os << ",\n"
       << pad << "\"allocs_per_event_" << kScheds[i] << "\": " << m.allocs_per_event[i];
    os << ",\n" << pad << "\"ns_per_pick_" << kScheds[i] << "\": " << m.ns_per_pick[i];
    os << ",\n" << pad << "\"ns_per_balance_" << kScheds[i] << "\": " << m.ns_per_balance[i];
    os << ",\n"
       << pad << "\"idle_events_per_sec_" << kScheds[i] << "\": " << m.idle_events_per_sec[i];
    os << ",\n"
       << pad << "\"idle_events_per_calib_" << kScheds[i] << "\": " << m.idle_events_per_calib(i);
    os << ",\n" << pad << "\"ticks_fired_" << kScheds[i] << "\": " << m.ticks_fired[i];
    os << ",\n" << pad << "\"ticks_elided_" << kScheds[i] << "\": " << m.ticks_elided[i];
    os << ",\n" << pad << "\"batch_updates_" << kScheds[i] << "\": " << m.batch_updates[i];
    static const int kShardLegs[3] = {1, 2, 4};
    for (int leg = 0; leg < 3; ++leg) {
      os << ",\n"
         << pad << "\"serving_events_per_sec_" << kScheds[i] << "_shards" << kShardLegs[leg]
         << "\": " << m.serving_events_per_sec[i][leg];
    }
    for (int leg = 0; leg < 3; ++leg) {
      os << ",\n"
         << pad << "\"serving_events_per_sec_" << kScheds[i] << "_shards" << kShardLegs[leg]
         << "_wheel\": " << m.serving_events_per_sec_wheel[i][leg];
    }
    os << ",\n"
       << pad << "\"openloop_requests_per_sec_" << kScheds[i]
       << "\": " << m.openloop_requests_per_sec[i];
    os << ",\n"
       << pad << "\"openloop_requests_per_calib_" << kScheds[i]
       << "\": " << m.openloop_requests_per_calib(i);
  }
  for (int i = 0; i < 2; ++i) {
    os << ",\n"
       << pad << "\"events_per_sec_" << kMicroScheds[i] << "\": " << m.micro_events_per_sec[i];
    os << ",\n"
       << pad << "\"events_per_calib_" << kMicroScheds[i] << "\": " << m.micro_events_per_calib(i);
    os << ",\n"
       << pad << "\"allocs_per_event_" << kMicroScheds[i] << "\": " << m.micro_allocs_per_event[i];
    os << ",\n" << pad << "\"ns_per_pick_" << kMicroScheds[i] << "\": " << m.micro_ns_per_pick[i];
    os << ",\n"
       << pad << "\"ns_per_balance_" << kMicroScheds[i] << "\": " << m.micro_ns_per_balance[i];
  }
  static const char* kQueueNames[2] = {"heap", "wheel"};
  for (int i = 0; i < 2; ++i) {
    os << ",\n"
       << pad << "\"queue_post_pop_ns_" << kQueueNames[i] << "\": " << m.queue_post_pop_ns[i];
    os << ",\n"
       << pad << "\"queue_ops_per_calib_" << kQueueNames[i] << "\": " << m.queue_ops_per_calib(i);
  }
  os << ",\n" << pad << "\"host_cpus\": " << m.host_cpus;
  return os.str();
}

void PrintMetrics(const Metrics& m) {
  std::printf("  calibration: %.3g ops/sec\n", m.calib_rate);
  for (int i = 0; i < 2; ++i) {
    std::printf(
        "  %s: %.3g events/sec (%.4f per calib-op), %.3f allocs/event, "
        "%.1f ns/pick, %.1f ns/balance-pass\n",
        kScheds[i], m.events_per_sec[i], m.events_per_calib(i), m.allocs_per_event[i],
        m.ns_per_pick[i], m.ns_per_balance[i]);
    std::printf(
        "  %s idle-heavy: %.3g tick-equivalent events/sec (%.4f per calib-op), "
        "%.0f ticks fired, %.0f elided, %.0f batch updates\n",
        kScheds[i], m.idle_events_per_sec[i], m.idle_events_per_calib(i), m.ticks_fired[i],
        m.ticks_elided[i], m.batch_updates[i]);
    std::printf(
        "  %s sharded-serving (1024 cores): %.3g / %.3g / %.3g events/sec at 1/2/4 shards "
        "(4-shard speedup %.2fx; host has %d CPU%s)\n",
        kScheds[i], m.serving_events_per_sec[i][0], m.serving_events_per_sec[i][1],
        m.serving_events_per_sec[i][2],
        m.serving_events_per_sec[i][0] > 0
            ? m.serving_events_per_sec[i][2] / m.serving_events_per_sec[i][0]
            : 0.0,
        m.host_cpus, m.host_cpus == 1 ? "" : "s");
    std::printf(
        "  %s sharded-serving, wheel queue: %.3g / %.3g / %.3g events/sec at 1/2/4 shards "
        "(1-shard wheel/heap %.2fx)\n",
        kScheds[i], m.serving_events_per_sec_wheel[i][0], m.serving_events_per_sec_wheel[i][1],
        m.serving_events_per_sec_wheel[i][2],
        m.serving_events_per_sec[i][0] > 0
            ? m.serving_events_per_sec_wheel[i][0] / m.serving_events_per_sec[i][0]
            : 0.0);
    std::printf("  %s open-loop serving (serve-smoke): %.3g requests/sec (%.6f per calib-op)\n",
                kScheds[i], m.openloop_requests_per_sec[i], m.openloop_requests_per_calib(i));
  }
  for (int i = 0; i < 2; ++i) {
    std::printf(
        "  %s (micro leg): %.3g events/sec (%.4f per calib-op), %.3f allocs/event, "
        "%.1f ns/pick, %.1f ns/balance-pass\n",
        kMicroScheds[i], m.micro_events_per_sec[i], m.micro_events_per_calib(i),
        m.micro_allocs_per_event[i], m.micro_ns_per_pick[i], m.micro_ns_per_balance[i]);
  }
  static const char* kQueueNames[2] = {"heap", "wheel"};
  for (int i = 0; i < 2; ++i) {
    std::printf("  %s queue at 256k pending: %.1f ns per pop+post pair (%.4f ops per calib-op)\n",
                kQueueNames[i], m.queue_post_pop_ns[i], m.queue_ops_per_calib(i));
  }
}

int WriteBaseline(const std::string& path, const Metrics& m, const std::string& before_block) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"schema\": 1,\n";
  out << "  \"workload\": \"micro_sched_ops throughput sim + Opteron pick/balance probes\",\n";
  if (!before_block.empty()) {
    out << "  \"before\": {\n" << before_block << "\n  },\n";
  }
  out << "  \"current\": {\n" << MetricsJson(m, 4) << "\n  }\n}\n";
  return 0;
}

int CheckAgainst(const std::string& path, const Metrics& fresh, double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  minijson::Value root;
  try {
    root = minijson::Parser(buf.str()).Parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "malformed baseline %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  const minijson::Value& cur = root.at("current");
  int failures = 0;
  // Floors (higher-is-better, throughput per calib op) skip keys whose
  // committed value is still the 0 placeholder — a schema-only refresh must
  // not pass vacuously against a floor of 0. Ceilings never skip: a
  // committed 0 allocs/event is a real budget (see tools/baseline_check.h).
  const auto floor_check = [&](const std::string& label, double want, double got,
                               const char* fmt) {
    const BaselineVerdict v = CheckBaselineFloor(want, got, tolerance);
    std::printf(fmt, label.c_str(), want, got, want * (1.0 - tolerance), BaselineVerdictLabel(v));
    if (v == BaselineVerdict::kRegressed) {
      ++failures;
    }
  };
  const auto ceiling_check = [&](const std::string& label, double want, double got) {
    // Allocation counts are deterministic; allow slack for workload drift
    // but catch a reintroduced per-event allocation (+1.0 would be caught).
    const BaselineVerdict v = CheckBaselineCeiling(want, got, tolerance, 0.2);
    std::printf("%s allocs/event: committed %.3f, measured %.3f (ceiling %.3f) %s\n",
                label.c_str(), want, got, want * (1.0 + tolerance) + 0.2, BaselineVerdictLabel(v));
    if (v == BaselineVerdict::kRegressed) {
      ++failures;
    }
  };
  static const char* kNormFmt =
      "%s events/calib-op: committed %.5f, measured %.5f (floor %.5f) %s\n";
  for (int i = 0; i < 2; ++i) {
    const std::string sched = kScheds[i];
    floor_check(sched, cur.at("events_per_calib_" + sched).as_number(), fresh.events_per_calib(i),
                kNormFmt);
    // Idle-heavy throughput: only present in baselines refreshed after the
    // suite was added; older files are checked on the classic metrics alone.
    if (cur.contains("idle_events_per_calib_" + sched)) {
      floor_check(sched + " idle", cur.at("idle_events_per_calib_" + sched).as_number(),
                  fresh.idle_events_per_calib(i), kNormFmt);
    }
    // Open-loop serving throughput: only present in baselines refreshed
    // after the serving-fleet scenarios landed.
    if (cur.contains("openloop_requests_per_calib_" + sched)) {
      floor_check(sched, cur.at("openloop_requests_per_calib_" + sched).as_number(),
                  fresh.openloop_requests_per_calib(i),
                  "%s open-loop requests/calib-op: committed %.6f, measured %.6f (floor %.6f) %s\n");
    }
    ceiling_check(sched, cur.at("allocs_per_event_" + sched).as_number(),
                  fresh.allocs_per_event[i]);
  }
  // Micro legs: present only in baselines refreshed after the registry grew
  // past the CFS/ULE pair; their absence is not a failure.
  for (int i = 0; i < 2; ++i) {
    const std::string sched = kMicroScheds[i];
    if (!cur.contains("events_per_calib_" + sched)) {
      continue;
    }
    floor_check(sched, cur.at("events_per_calib_" + sched).as_number(),
                fresh.micro_events_per_calib(i), kNormFmt);
    ceiling_check(sched, cur.at("allocs_per_event_" + sched).as_number(),
                  fresh.micro_allocs_per_event[i]);
  }
  // Bare queue-backend probes: present only in baselines refreshed after the
  // timing-wheel backend landed. The zero-skip rule matters here — these keys
  // enter the schema with value 0 until the next full refresh.
  static const char* kQueueNames[2] = {"heap", "wheel"};
  for (int i = 0; i < 2; ++i) {
    const std::string key = std::string("queue_ops_per_calib_") + kQueueNames[i];
    if (!cur.contains(key)) {
      continue;
    }
    floor_check(std::string(kQueueNames[i]) + " queue", cur.at(key).as_number(),
                fresh.queue_ops_per_calib(i),
                "%s ops/calib-op: committed %.5f, measured %.5f (floor %.5f) %s\n");
  }
  return failures > 0 ? 1 : 0;
}

int Main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_path = "BENCH_schedsim.json";
  std::string before_json;  // path to a previous measurement to embed as "before"
  bool check = false;
  int runs = 3;
  double scale = 1.0;
  double tolerance = 0.15;
  std::string tickless = "on";
  std::string queue;  // "" keeps the SCHEDBATTLE_QUEUE / heap default
  bool observer_gate = false;
  double observer_tolerance = 0.05;
  std::string decision_log_out;

  FlagSet flags;
  flags.String("out", &out_path, "write measured metrics to this JSON file")
      .String("baseline", &baseline_path, "committed baseline for --check")
      .String("embed-before", &before_json, "JSON file whose \"current\" becomes \"before\"")
      .Bool("check", &check, "compare against --baseline instead of writing")
      .Int("runs", &runs, "measurement repetitions (best-of)")
      .Double("scale", &scale, "workload scale factor (CI smoke uses 0.2)")
      .Double("tolerance", &tolerance, "allowed relative events/sec regression")
      .String("tickless", &tickless, "tick elision: on (default) or off")
      .String("queue", &queue,
              "default event-queue backend for the micro/idle/open-loop legs: "
              "heap or wheel (sharded-serving and queue probes always run both)")
      .Bool("observer-gate", &observer_gate,
            "measure attached-DecisionLog overhead instead; fail above"
            " --observer-tolerance")
      .Double("observer-tolerance", &observer_tolerance,
              "allowed relative events/sec cost of attached decision logging")
      .String("decision-log-out", &decision_log_out,
              "with --observer-gate: write a JSONL sample of the attached run");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [options]\n%s", argv[0], flags.Help().c_str());
      return 0;
    }
  }
  std::string error;
  if (!flags.Parse(argc, argv, 1, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.Help().c_str());
    return 2;
  }
  if (tickless != "on" && tickless != "off") {
    std::fprintf(stderr, "--tickless must be on or off (got '%s')\n", tickless.c_str());
    return 2;
  }
  SetTicklessEnabled(tickless == "on");
  if (!queue.empty()) {
    QueueKind kind;
    if (!ParseQueueKind(queue, &kind)) {
      std::fprintf(stderr, "--queue must be heap or wheel (got '%s')\n", queue.c_str());
      return 2;
    }
    SetDefaultQueueKind(kind);
  }

  if (observer_gate) {
    std::printf("observer gate (runs=%d scale=%.2f tolerance=%.0f%%)...\n", runs, scale,
                observer_tolerance * 100);
    return ObserverGate(runs, scale, observer_tolerance, decision_log_out);
  }

  std::printf("measuring (runs=%d scale=%.2f)...\n", runs, scale);
  const Metrics m = MeasureAll(runs, scale);
  PrintMetrics(m);

  if (check) {
    return CheckAgainst(baseline_path, m, tolerance);
  }

  std::string before_block;
  if (!before_json.empty()) {
    std::ifstream in(before_json);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", before_json.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      const minijson::Value prev = minijson::Parser(buf.str()).Parse();
      const minijson::Value& cur = prev.at("current");
      Metrics before;
      before.calib_rate = cur.at("calibration_ops_per_sec").as_number();
      for (int i = 0; i < 2; ++i) {
        const std::string sched = kScheds[i];
        before.events_per_sec[i] = cur.at("events_per_sec_" + sched).as_number();
        before.allocs_per_event[i] = cur.at("allocs_per_event_" + sched).as_number();
        before.ns_per_pick[i] = cur.at("ns_per_pick_" + sched).as_number();
        before.ns_per_balance[i] = cur.at("ns_per_balance_" + sched).as_number();
        // Idle-suite keys only exist in baselines measured after the
        // idle-heavy workload landed; older files embed without them.
        if (cur.contains("idle_events_per_sec_" + sched)) {
          before.idle_events_per_sec[i] = cur.at("idle_events_per_sec_" + sched).as_number();
          before.ticks_fired[i] = cur.at("ticks_fired_" + sched).as_number();
          before.ticks_elided[i] = cur.at("ticks_elided_" + sched).as_number();
          before.batch_updates[i] = cur.at("batch_updates_" + sched).as_number();
        }
      }
      before_block = MetricsJson(before, 4);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "malformed %s: %s\n", before_json.c_str(), e.what());
      return 1;
    }
  }
  if (!out_path.empty()) {
    if (int rc = WriteBaseline(out_path, m, before_block); rc != 0) {
      return rc;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace schedbattle

int main(int argc, char** argv) { return schedbattle::Main(argc, argv); }
