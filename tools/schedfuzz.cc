// schedfuzz: randomized differential fuzzing of the registered scheduler
// classes under the online invariant monitors (src/check).
//
// Generates --runs random terminating workload specs (GenerateFuzzSpec) and
// executes every spec under the selected scheduler(s) with the full
// MonitorSuite armed, in parallel through a CampaignRunner. Three oracles
// judge each spec:
//
//   1. invariants:   no monitor records a violation,
//   2. liveness:     every app finishes before the horizon and the machine
//                    reaps every thread it forked (forks == exits) — fuzz
//                    workloads are structurally terminating, so a stuck
//                    thread implicates the scheduler,
//   3. differential: with two or more schedulers selected (--sched=both or
//                    --sched=all), every pair of classes must fork the same
//                    number of threads for the same spec (workload structure
//                    is seed-determined, never schedule-determined),
//   4. tickless:     every spec also runs with tick elision forced off; the
//                    schedstats JSON (minus the tick_elision counter line)
//                    must be byte-identical to the tickless run — elision is
//                    an optimization, never a behavior change,
//   5. log:          the schedscope decision-record log is part of the
//                    deterministic contract: executing the same spec twice
//                    yields a byte-identical JSONL log, and the tickless-off
//                    run's log (minus the header line) matches the tickless
//                    run's — the decision *stream*, not just the aggregate
//                    schedstats, is invariant under elision,
//   6. sharded:      every spec also runs on a sharded engine (--shards,
//                    default 4); its schedstats JSON and decision log must be
//                    byte-identical to the single-queue run — sharding, like
//                    elision, is an engine optimization, never a behavior
//                    change,
//   7. queue:        every spec also runs on the other event-queue backend
//                    (timing wheel vs 4-ary heap, whichever is not the
//                    session default); both realize the same (time, seq)
//                    total order, so schedstats and the decision log must be
//                    byte-identical — the backend is a pure performance knob.
//
// Every failure is delta-debugged (ShrinkFuzzSpec) to a minimal reproducer
// and written to --out as JSON that `schedbattle_cli replay --spec=<file>`
// re-executes deterministically. Exit status: 0 clean, 1 failures found,
// 2 usage error.
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/check/fuzz.h"
#include "src/core/campaign.h"
#include "src/core/flags.h"
#include "src/sched/machine.h"
#include "src/sched/registry.h"

namespace schedbattle {
namespace {

struct Failure {
  FuzzSpec spec;
  // "violation", "liveness", "differential", "tickless", "logdiverge",
  // "sharddiverge" or "queuediverge".
  std::string kind;
  std::string detail;  // monitor name / outcome summary
};

// Drops the "tick_elision" counter line from a schedstats JSON document: it
// is the one line that legitimately differs between tickless on and off.
std::string StripTickElision(const std::string& json) {
  const size_t pos = json.find("\"tick_elision\"");
  if (pos == std::string::npos) {
    return json;
  }
  const size_t line_start = json.rfind('\n', pos) + 1;  // npos+1 == 0
  size_t line_end = json.find('\n', pos);
  line_end = line_end == std::string::npos ? json.size() : line_end + 1;
  return json.substr(0, line_start) + json.substr(line_end);
}

// Drops the header line (the one line that carries the tickless delivery
// flag) from a decision-log JSONL document, leaving the record stream.
std::string StripLogHeader(const std::string& jsonl) {
  const size_t nl = jsonl.find('\n');
  return nl == std::string::npos ? std::string() : jsonl.substr(nl + 1);
}

// The decision-log shrink oracle: true when executing `spec` twice yields
// different logs, or when the record stream changes with elision off.
bool DecisionLogDiverges(const FuzzSpec& spec) {
  ExperimentSpec on = spec.ToExperimentSpec();
  on.collect_decision_log = true;
  ExperimentSpec off = on;
  off.machine.tickless = false;
  const RunResult a = ExecuteSpec(on);
  const RunResult b = ExecuteSpec(on);
  const RunResult c = ExecuteSpec(off);
  return a.decision_log != b.decision_log ||
         StripLogHeader(a.decision_log) != StripLogHeader(c.decision_log);
}

// The sharded-engine shrink oracle: true when executing `spec` on a sharded
// engine produces different bytes (schedstats or decision log) than the
// single-queue engine.
bool ShardedDiverges(int shards, const FuzzSpec& spec) {
  ExperimentSpec serial = spec.ToExperimentSpec();
  serial.collect_schedstats = true;
  serial.collect_decision_log = true;
  ExperimentSpec sharded = serial;
  sharded.shards = shards;
  const RunResult a = ExecuteSpec(serial);
  const RunResult b = ExecuteSpec(sharded);
  return a.schedstats_json != b.schedstats_json || a.decision_log != b.decision_log;
}

// The queue-backend shrink oracle: true when the timing-wheel engine
// produces different bytes (schedstats or decision log) than the heap
// engine for `spec` — both backends realize one (time, seq) total order, so
// any divergence is a queue bug.
bool QueueBackendDiverges(const FuzzSpec& spec) {
  ExperimentSpec heap = spec.ToExperimentSpec();
  heap.collect_schedstats = true;
  heap.collect_decision_log = true;
  ExperimentSpec wheel = heap;
  heap.queue = QueueKind::kHeap;
  wheel.queue = QueueKind::kWheel;
  const RunResult a = ExecuteSpec(heap);
  const RunResult b = ExecuteSpec(wheel);
  return a.schedstats_json != b.schedstats_json || a.decision_log != b.decision_log;
}

// Runs `spec` with elision on and off; true when the stripped schedstats
// diverge (the tickless shrink oracle).
bool TicklessDiverges(const FuzzSpec& spec) {
  ExperimentSpec on = spec.ToExperimentSpec();
  on.collect_schedstats = true;
  ExperimentSpec off = on;
  off.machine.tickless = false;
  const RunResult ron = ExecuteSpec(on);
  const RunResult roff = ExecuteSpec(off);
  return StripTickElision(ron.schedstats_json) != StripTickElision(roff.schedstats_json);
}

// Writes `spec` as a replayable reproducer; returns the path (empty on I/O
// failure, which is reported but not fatal — the summary still lists it).
std::string WriteReproducer(const std::string& dir, const FuzzSpec& spec) {
  const std::string path = dir + "/" + spec.Label() + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "schedfuzz: cannot write %s\n", path.c_str());
    return "";
  }
  const std::string json = spec.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return path;
}

int FuzzMain(int argc, char** argv) {
  std::string sched = "both";
  int runs = 200;
  int jobs = 0;
  double scale = 1.0;
  uint64_t seed = 1;
  std::string out_dir = "fuzz-out";
  int max_shrink = 400;
  bool no_shrink = false;
  std::string tickless = "on";
  int shards = 4;
  std::string queue;

  FlagSet flags;
  flags.String("sched", &sched,
               "scheduler(s) under test: a registry id, 'both' (cfs+ule) or 'all'")
      .Int("runs", &runs, "number of random specs to generate")
      .Int("jobs", &jobs, "campaign worker threads (0 = hardware concurrency)")
      .Double("scale", &scale, "loop-count scale factor (CI smoke uses 0.1)")
      .Uint64("seed", &seed, "root RNG seed for spec generation")
      .String("out", &out_dir, "directory for reproducer JSON files")
      .Int("max-shrink", &max_shrink, "oracle budget per shrink")
      .Bool("no-shrink", &no_shrink, "emit failing specs unshrunk")
      .String("tickless", &tickless, "tick elision: on (default) or off")
      .Int("shards", &shards, "engine shards for the sharded differential leg")
      .String("queue", &queue,
              "event-queue backend for the non-differential legs: heap or"
              " wheel (default: SCHEDBATTLE_QUEUE)");

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [options]\n%s", argv[0], flags.Help().c_str());
      return 0;
    }
  }
  std::string error;
  if (!flags.Parse(argc, argv, 1, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.Help().c_str());
    return 2;
  }
  std::vector<SchedKind> kinds;
  if (sched == "both") {
    kinds = {SchedKind::kCfs, SchedKind::kUle};
  } else if (sched == "all") {
    kinds = SchedulerRegistry::Instance().AllKinds();
  } else {
    SchedKind kind;
    if (!ParseSchedKind(sched, &kind)) {
      std::fprintf(stderr, "--sched must be a registered class (%s), 'both' or 'all'"
                   " (got '%s')\n",
                   SchedulerRegistry::Instance().IdList().c_str(), sched.c_str());
      return 2;
    }
    kinds = {kind};
  }
  if (runs < 1 || scale <= 0.0 || max_shrink < 1 || shards < 2) {
    std::fprintf(stderr, "--runs, --scale and --max-shrink must be positive, --shards >= 2\n");
    return 2;
  }
  if (tickless != "on" && tickless != "off") {
    std::fprintf(stderr, "--tickless must be on or off (got '%s')\n", tickless.c_str());
    return 2;
  }
  SetTicklessEnabled(tickless == "on");
  if (!queue.empty()) {
    QueueKind kind;
    if (!ParseQueueKind(queue, &kind)) {
      std::fprintf(stderr, "--queue must be heap or wheel (got '%s')\n", queue.c_str());
      return 2;
    }
    SetDefaultQueueKind(kind);
  }
  // The queue-differential leg runs whichever backend the session is NOT
  // using, so the comparison always crosses the wheel/heap boundary.
  const QueueKind base_queue = DefaultQueueKind();
  const QueueKind other_queue =
      base_queue == QueueKind::kWheel ? QueueKind::kHeap : QueueKind::kWheel;

  // One base spec per run; every scheduler under test gets its own copy so
  // the differential oracle compares identical workloads.
  Rng root(seed);
  std::vector<FuzzSpec> base;
  base.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    Rng stream = root.Split();
    base.push_back(GenerateFuzzSpec(&stream, kinds.front(), scale));
  }
  // Every (spec, scheduler) pair runs five times: elision on (index 5n),
  // forced off (5n+1), elision on again (5n+2), on a sharded engine (5n+3),
  // and on the other event-queue backend (5n+4). All collect the decision
  // log; 5n, 5n+1, 5n+3 and 5n+4 also collect schedstats. The oracles
  // byte-compare 5n vs 5n+1 (tickless accounting and record stream), 5n vs
  // 5n+2 (pure determinism, across campaign worker threads), 5n vs 5n+3
  // (shard-count invisibility) and 5n vs 5n+4 (queue-backend invisibility).
  std::vector<FuzzSpec> fuzz_specs;
  std::vector<ExperimentSpec> exp_specs;
  for (const FuzzSpec& b : base) {
    for (SchedKind kind : kinds) {
      FuzzSpec s = b;
      s.sched = kind;
      fuzz_specs.push_back(s);
      ExperimentSpec on = s.ToExperimentSpec();
      on.collect_schedstats = true;
      on.collect_decision_log = true;
      on.queue = base_queue;
      ExperimentSpec off = on;
      off.machine.tickless = false;
      ExperimentSpec again = on;
      again.collect_schedstats = false;
      ExperimentSpec sharded = on;
      sharded.shards = shards;
      ExperimentSpec wheelq = on;
      wheelq.queue = other_queue;
      exp_specs.push_back(std::move(on));
      exp_specs.push_back(std::move(off));
      exp_specs.push_back(std::move(again));
      exp_specs.push_back(std::move(sharded));
      exp_specs.push_back(std::move(wheelq));
    }
  }

  std::printf("schedfuzz: %d specs x %zu scheduler(s) x {tickless on, off, repeat, "
              "%d-shard, %s-queue}, scale %.2f, seed %" PRIu64 "\n",
              runs, kinds.size(), shards, QueueKindName(other_queue), scale, seed);
  const CampaignRunner runner(jobs);
  const std::vector<RunResult> results = runner.Run(exp_specs);

  std::vector<Failure> failures;
  const size_t per_spec = kinds.size();
  for (int i = 0; i < runs; ++i) {
    std::vector<FuzzOutcome> outcomes;
    for (size_t k = 0; k < per_spec; ++k) {
      const size_t pair_idx = static_cast<size_t>(i) * per_spec + k;
      const size_t idx = pair_idx * 5;
      const FuzzOutcome out = OutcomeFromResult(results[idx]);
      const FuzzSpec& s = fuzz_specs[pair_idx];
      const std::string on_stats = StripTickElision(results[idx].schedstats_json);
      const std::string off_stats = StripTickElision(results[idx + 1].schedstats_json);
      if (on_stats != off_stats) {
        std::fprintf(stderr, "FAIL %s: tickless schedstats diverged from eager-tick run\n",
                     s.Label().c_str());
        failures.push_back({s, "tickless", "schedstats differ with elision on vs off"});
      }
      if (results[idx].schedstats_json != results[idx + 3].schedstats_json ||
          results[idx].decision_log != results[idx + 3].decision_log) {
        std::fprintf(stderr, "FAIL %s: %d-shard engine diverged from single-queue run\n",
                     s.Label().c_str(), shards);
        failures.push_back({s, "sharddiverge", "schedstats or decision log differ on a sharded engine"});
      }
      if (results[idx].schedstats_json != results[idx + 4].schedstats_json ||
          results[idx].decision_log != results[idx + 4].decision_log) {
        std::fprintf(stderr, "FAIL %s: %s-queue engine diverged from %s-queue run\n",
                     s.Label().c_str(), QueueKindName(other_queue), QueueKindName(base_queue));
        failures.push_back(
            {s, "queuediverge", "schedstats or decision log differ across queue backends"});
      }
      if (results[idx].decision_log != results[idx + 2].decision_log) {
        std::fprintf(stderr, "FAIL %s: decision log diverged between identical runs\n",
                     s.Label().c_str());
        failures.push_back({s, "logdiverge", "decision log not deterministic"});
      } else if (StripLogHeader(results[idx].decision_log) !=
                 StripLogHeader(results[idx + 1].decision_log)) {
        std::fprintf(stderr, "FAIL %s: decision records diverged with elision off\n",
                     s.Label().c_str());
        failures.push_back({s, "logdiverge", "decision records differ with elision on vs off"});
      }
      if (out.violations > 0) {
        std::fprintf(stderr, "FAIL %s: %" PRIu64 " violation(s), first monitor %s\n%s",
                     s.Label().c_str(), out.violations, out.monitor.c_str(),
                     out.report.c_str());
        failures.push_back({s, "violation", out.monitor});
      } else if (!out.all_finished || out.forks != out.exits) {
        std::fprintf(stderr,
                     "FAIL %s: liveness (all_finished=%d forks=%" PRIu64 " exits=%" PRIu64 ")\n",
                     s.Label().c_str(), out.all_finished ? 1 : 0, out.forks, out.exits);
        failures.push_back({s, "liveness", "stuck thread or unfinished app"});
      }
      outcomes.push_back(out);
    }
    // Pairwise differential: all classes must agree on the fork count, so
    // comparing each against the first covers every pair.
    for (size_t k = 1; k < outcomes.size(); ++k) {
      if (outcomes[k].forks == outcomes[0].forks) {
        continue;
      }
      const size_t idx = static_cast<size_t>(i) * per_spec;
      std::fprintf(stderr, "FAIL %s: differential forks %s=%" PRIu64 " %s=%" PRIu64 "\n",
                   fuzz_specs[idx].Label().c_str(), std::string(SchedId(kinds[0])).c_str(),
                   outcomes[0].forks, std::string(SchedId(kinds[k])).c_str(),
                   outcomes[k].forks);
      failures.push_back({fuzz_specs[idx], "differential", "fork count diverged"});
    }
  }

  if (failures.empty()) {
    std::printf("schedfuzz: all %zu runs clean\n", results.size());
    return 0;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  for (const Failure& f : failures) {
    FuzzSpec minimal = f.spec;
    if (!no_shrink && f.kind == "violation") {
      const ShrinkResult shrunk = ShrinkFuzzSpec(f.spec, MonitorFiresOracle(f.detail), max_shrink);
      minimal = shrunk.minimal;
      std::fprintf(stderr, "shrunk %s: %d -> %d threads (%d oracle calls)\n",
                   f.spec.Label().c_str(), f.spec.TotalThreads(), minimal.TotalThreads(),
                   shrunk.attempts);
    } else if (!no_shrink && f.kind == "logdiverge") {
      const ShrinkResult shrunk = ShrinkFuzzSpec(f.spec, DecisionLogDiverges, max_shrink);
      minimal = shrunk.minimal;
      std::fprintf(stderr, "shrunk %s: %d -> %d threads (%d oracle calls)\n",
                   f.spec.Label().c_str(), f.spec.TotalThreads(), minimal.TotalThreads(),
                   shrunk.attempts);
    } else if (!no_shrink && f.kind == "sharddiverge") {
      const ShrinkResult shrunk = ShrinkFuzzSpec(
          f.spec, [shards](const FuzzSpec& s) { return ShardedDiverges(shards, s); },
          max_shrink);
      minimal = shrunk.minimal;
      std::fprintf(stderr, "shrunk %s: %d -> %d threads (%d oracle calls)\n",
                   f.spec.Label().c_str(), f.spec.TotalThreads(), minimal.TotalThreads(),
                   shrunk.attempts);
    } else if (!no_shrink && f.kind == "queuediverge") {
      const ShrinkResult shrunk = ShrinkFuzzSpec(f.spec, QueueBackendDiverges, max_shrink);
      minimal = shrunk.minimal;
      std::fprintf(stderr, "shrunk %s: %d -> %d threads (%d oracle calls)\n",
                   f.spec.Label().c_str(), f.spec.TotalThreads(), minimal.TotalThreads(),
                   shrunk.attempts);
    } else if (!no_shrink && f.kind == "tickless") {
      const ShrinkResult shrunk = ShrinkFuzzSpec(f.spec, TicklessDiverges, max_shrink);
      minimal = shrunk.minimal;
      std::fprintf(stderr, "shrunk %s: %d -> %d threads (%d oracle calls)\n",
                   f.spec.Label().c_str(), f.spec.TotalThreads(), minimal.TotalThreads(),
                   shrunk.attempts);
    } else if (!no_shrink && f.kind == "liveness") {
      const ShrinkResult shrunk = ShrinkFuzzSpec(
          f.spec,
          [](const FuzzSpec& s) {
            const FuzzOutcome out = RunFuzzSpec(s);
            return !out.all_finished || out.forks != out.exits;
          },
          max_shrink);
      minimal = shrunk.minimal;
    }
    const std::string path = WriteReproducer(out_dir, minimal);
    std::fprintf(stderr, "reproducer (%s, %s): %s\n", f.kind.c_str(), f.detail.c_str(),
                 path.empty() ? "<unwritable>" : path.c_str());
  }
  std::printf("schedfuzz: %zu failure(s) across %zu runs; reproducers in %s\n", failures.size(),
              results.size(), out_dir.c_str());
  return 1;
}

}  // namespace
}  // namespace schedbattle

int main(int argc, char** argv) { return schedbattle::FuzzMain(argc, argv); }
