// CpuSet regression tests for the >64-core port.
//
// The simulator's masks (Machine::idle_mask_, ULE's load masks, topology
// group masks) were once bare uint64_t, silently aliasing cores 64+ into the
// low word. These tests pin the CpuSet semantics across word boundaries and
// then exercise the two decision paths that went wrong on big boxes: wake
// placement picking an idle core above bit 63, and ULE's idle steal finding a
// steal source above bit 63.
#include <gtest/gtest.h>

#include <vector>

#include "src/sched/machine.h"
#include "src/sim/engine.h"
#include "src/topo/cpuset.h"
#include "src/topo/topology.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

TEST(CpuSetTest, SetTestClearAcrossWordBoundaries) {
  CpuSet s;
  for (int c : {0, 63, 64, 65, 127, 128, 512, 1023}) {
    EXPECT_FALSE(s.Test(c)) << c;
    s.Set(c);
    EXPECT_TRUE(s.Test(c)) << c;
  }
  EXPECT_EQ(s.Count(), 8);
  // Setting bit 64 must not alias into the low word (the old uint64_t bug).
  EXPECT_EQ(s.low64(), (1ULL << 0) | (1ULL << 63));
  s.Clear(64);
  EXPECT_FALSE(s.Test(64));
  EXPECT_TRUE(s.Test(65));
  EXPECT_EQ(s.Count(), 7);
}

TEST(CpuSetTest, IterationCrossesWords) {
  CpuSet s;
  const std::vector<int> bits = {3, 63, 64, 190, 191, 192, 1000, 1023};
  for (int c : bits) {
    s.Set(c);
  }
  std::vector<int> seen;
  for (int c = s.FirstSet(); c >= 0; c = s.NextSet(c)) {
    seen.push_back(c);
  }
  EXPECT_EQ(seen, bits);
  EXPECT_EQ(s.NextSet(1023), -1);
}

TEST(CpuSetTest, AllOfFillsExactWidth) {
  const CpuSet all = CpuSet::AllOf(1024);
  EXPECT_EQ(all.Count(), 1024);
  EXPECT_TRUE(all.Test(1023));
  const CpuSet some = CpuSet::AllOf(100);
  EXPECT_EQ(some.Count(), 100);
  EXPECT_TRUE(some.Test(99));
  EXPECT_FALSE(some.Test(100));
  EXPECT_EQ(CpuSet::AllOf(64).Count(), 64);
  EXPECT_FALSE(CpuSet::AllOf(64).Test(64));
}

TEST(CpuSetTest, CountThroughRanksAcrossWords) {
  CpuSet s;
  for (int c : {10, 70, 130, 700}) {
    s.Set(c);
  }
  EXPECT_EQ(s.CountThrough(9), 0);
  EXPECT_EQ(s.CountThrough(10), 1);
  EXPECT_EQ(s.CountThrough(63), 1);
  EXPECT_EQ(s.CountThrough(70), 2);
  EXPECT_EQ(s.CountThrough(129), 2);
  EXPECT_EQ(s.CountThrough(130), 3);
  EXPECT_EQ(s.CountThrough(1023), 4);
}

TEST(CpuSetTest, WordwiseOperators) {
  CpuSet a;
  a.Set(5);
  a.Set(100);
  a.Set(900);
  CpuSet b;
  b.Set(100);
  b.Set(901);
  EXPECT_EQ((a & b).Count(), 1);
  EXPECT_TRUE((a & b).Test(100));
  EXPECT_EQ((a | b).Count(), 4);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.AndNot(b).Test(100));
  EXPECT_TRUE(a.AndNot(b).Test(900));
  EXPECT_TRUE(a.Without(900) == (a.AndNot(CpuSet::Single(900))));
}

// ---- >64-core decision-path regressions ----

// Wake placement on a 128-core flat box whose only idle cores are above bit
// 63: the chosen core must come from the high word. Under the old uint64_t
// masks the idle-core search saw an empty (or aliased) mask and fell back to
// a busy core.
TEST(WideMachinePickTest, WakePlacementFindsIdleCoreAboveBit63) {
  for (const char* sched : {"cfs", "ule"}) {
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(128), MakeScheduler(sched));
    machine.Boot();
    // Busy-fill cores 0..95: every idle core is >= 96 (word 1 of the mask).
    std::vector<SimThread*> hogs;
    for (CoreId c = 0; c < 96; ++c) {
      hogs.push_back(machine.Spawn(Spinner("hog", c + 1, c), nullptr));
    }
    engine.RunUntil(Milliseconds(5));
    ASSERT_EQ(machine.idle_mask().FirstSet(), 96) << sched;

    ThreadSpec spec;
    spec.name = "waker";
    spec.body = MakeScriptBody(ScriptBuilder()
                                   .Loop(-1)
                                   .Compute(Microseconds(100))
                                   .Sleep(Milliseconds(1))
                                   .EndLoop()
                                   .Build(),
                               Rng(7));
    SimThread* probe = machine.Spawn(std::move(spec), nullptr);
    engine.RunUntil(Milliseconds(8));
    EXPECT_GE(probe->cpu(), 96) << sched << " placed the wakee on a busy low-word core";
    engine.RequestStop();
  }
}

// ULE steal/balance across the word boundary: the only surplus work in the
// box is queued on core 100 (word 1) and the only core that ever goes idle is
// core 3 (word 0). Every other thread is pinned single-core, so the ONLY way
// core 3 gets fed is by finding core 100's surplus across the word boundary.
TEST(WideMachinePickTest, UleIdleStealFindsSourceAboveBit63) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(128), MakeScheduler("ule"));
  machine.Boot();
  std::vector<SimThread*> extra;
  for (CoreId c = 0; c < 128; ++c) {
    if (c == 3) {
      continue;
    }
    machine.Spawn(Spinner("hog", c + 1, c), nullptr);
  }
  // Core 3 gets a finite hog so it goes idle mid-run (triggering the idle
  // steal scan); core 100 gets two extra spinners that sit queued.
  ThreadSpec finite;
  finite.name = "finite";
  finite.affinity = CpuMask::Single(3);
  finite.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(10)).Build(), Rng(99));
  machine.Spawn(std::move(finite), nullptr);
  for (int i = 0; i < 2; ++i) {
    extra.push_back(machine.Spawn(Spinner("queued", 200 + i, 100), nullptr));
  }
  engine.RunUntil(Milliseconds(1));
  // Widen the queued spinners' affinity so migration is allowed.
  for (SimThread* t : extra) {
    machine.SetAffinity(t, CpuMask::AllOf(128));
  }
  engine.RunUntil(Milliseconds(300));
  const bool stolen = extra[0]->cpu() == 3 || extra[1]->cpu() == 3;
  EXPECT_TRUE(stolen) << "core 100's surplus never reached idle core 3 "
                      << "(cpus: " << extra[0]->cpu() << ", " << extra[1]->cpu() << ")";
  EXPECT_FALSE(machine.idle_mask().Test(3));
  engine.RequestStop();
}

}  // namespace
}  // namespace schedbattle
