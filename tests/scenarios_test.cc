// Integration tests: scaled-down versions of the paper's experiments, run
// through the same scenario code the bench binaries use. These protect the
// headline results against regressions.
#include "src/core/scenarios.h"

#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/ule/interact.h"

namespace schedbattle {
namespace {

TEST(ScenarioTest, Table2UleStarvesFibo) {
  FiboSysbenchResult cfs = RunFiboSysbench(SchedKind::kCfs, 42, /*scale=*/0.15);
  FiboSysbenchResult ule = RunFiboSysbench(SchedKind::kUle, 42, /*scale=*/0.15);
  // ULE: sysbench roughly doubles its throughput by starving fibo.
  EXPECT_GT(ule.sysbench_tps, 1.4 * cfs.sysbench_tps);
  // Both complete fibo's full work eventually.
  EXPECT_NEAR(ToSeconds(cfs.fibo_runtime), 24.0, 1.0);
  EXPECT_NEAR(ToSeconds(ule.fibo_runtime), 24.0, 1.0);
  // ULE latency far lower.
  EXPECT_LT(ule.sysbench_avg_latency, cfs.sysbench_avg_latency);
}

TEST(ScenarioTest, Fig1FiboProgressRates) {
  FiboSysbenchResult cfs = RunFiboSysbench(SchedKind::kCfs, 42, 0.15);
  FiboSysbenchResult ule = RunFiboSysbench(SchedKind::kUle, 42, 0.15);
  auto rate = [](const FiboSysbenchResult& r, double t1, double t2) {
    return (r.fibo_runtime_series.ValueAt(SecondsF(t2)) -
            r.fibo_runtime_series.ValueAt(SecondsF(t1))) /
           (t2 - t1);
  };
  const double window_end = ToSeconds(ule.sysbench_finish) * 0.9;
  EXPECT_NEAR(rate(cfs, 10, window_end), 0.5, 0.15) << "CFS: fibo gets ~half the core";
  EXPECT_LT(rate(ule, 10, window_end), 0.05) << "ULE: fibo starves";
}

TEST(ScenarioTest, Fig2PenaltiesSeparate) {
  FiboSysbenchResult ule = RunFiboSysbench(SchedKind::kUle, 42, 0.15);
  const double mid = 7.0 + (ToSeconds(ule.sysbench_finish) - 7.0) / 2;
  EXPECT_GT(ule.fibo_penalty_series.ValueAt(SecondsF(mid)), 2 * kInteractThresh);
  EXPECT_LT(ule.sysbench_penalty_series.ValueAt(SecondsF(mid)), kInteractThresh);
}

TEST(ScenarioTest, Fig3TwoBandsOfWorkers) {
  SysbenchThreadsResult r = RunSysbenchThreads(SchedKind::kUle, 42, 0.15);
  EXPECT_GE(r.interactive_count, 40);
  EXPECT_GE(r.background_count, 20);
  EXPECT_GE(r.starved_count, 15);
  ASSERT_FALSE(r.interactive_penalty.points().empty());
  ASSERT_FALSE(r.background_penalty.points().empty());
  EXPECT_LT(r.interactive_penalty.points().back().value, kInteractThresh);
  EXPECT_GT(r.background_penalty.points().back().value, kInteractThresh);
}

TEST(ScenarioTest, Fig3CfsRunsEveryoneFairly) {
  SysbenchThreadsResult r = RunSysbenchThreads(SchedKind::kCfs, 42, 0.15);
  // Under CFS nobody starves: the "background" (near-zero runtime) band is
  // (almost) empty.
  EXPECT_LE(r.starved_count, 2);
}

TEST(ScenarioTest, Fig6UleSlowCfsFastImperfect) {
  LoadBalanceResult ule = RunLoadBalance512(SchedKind::kUle, 42, Seconds(60), 1);
  // Right after the unpin, core 0 keeps ~481 (31 idle steals of one each).
  const auto after = ule.heatmap->CountsAt(ule.unpin_time + Milliseconds(400));
  ASSERT_FALSE(after.empty());
  EXPECT_GT(after[0], 450);
  EXPECT_LT(ule.balanced_time, 0) << "ULE cannot balance 512 threads in 45s";

  LoadBalanceResult cfs = RunLoadBalance512(SchedKind::kCfs, 42, Seconds(60), 1);
  const auto cfs_after = cfs.heatmap->CountsAt(cfs.unpin_time + Milliseconds(400));
  int mx = 0;
  for (int v : cfs_after) {
    mx = std::max(mx, v);
  }
  EXPECT_LT(mx, 200) << "CFS moves hundreds of threads within 0.4s";
  EXPECT_LT(cfs.balanced_time, 0) << "but never to a perfect balance";
  EXPECT_GE(cfs.final_max - cfs.final_min, 2);
}

TEST(ScenarioTest, Fig7CrayStartsSlowerOnUle) {
  CrayResult ule = RunCrayPlacement(SchedKind::kUle, 42, /*scale=*/0.5);
  CrayResult cfs = RunCrayPlacement(SchedKind::kCfs, 42, /*scale=*/0.5);
  EXPECT_GT(ToSeconds(ule.all_runnable_time), 1.7 * ToSeconds(cfs.all_runnable_time));
  const double finish_ratio = ToSeconds(ule.finish_time) / ToSeconds(cfs.finish_time);
  EXPECT_GT(finish_ratio, 0.8);
  EXPECT_LT(finish_ratio, 1.25);
}

TEST(ScenarioTest, SuiteRowBasics) {
  const SuiteRow row = RunSuiteApp("gzip", /*cores=*/1, 42, /*scale=*/0.05);
  EXPECT_GT(row.cfs_metric, 0.0);
  EXPECT_GT(row.ule_metric, 0.0);
  EXPECT_NEAR(row.diff_pct, 0.0, 5.0) << "single-threaded compute: schedulers equivalent";
}

TEST(ScenarioTest, ApacheSingleCoreUleAdvantage) {
  const SuiteRow row = RunSuiteApp("apache", /*cores=*/1, 42, /*scale=*/0.1);
  EXPECT_GT(row.diff_pct, 15.0) << "apache runs much faster on ULE (no ab preemption)";
  EXPECT_GT(row.cfs_wakeup_preemptions, 100 * (row.ule_wakeup_preemptions + 1));
}

TEST(ScenarioTest, ScimarkGcVariantUleDisadvantage) {
  const SuiteRow row = RunSuiteApp("scimark2-(2)", /*cores=*/1, 42, /*scale=*/1.0);
  EXPECT_LT(row.diff_pct, -15.0) << "the GC-heavy scimark is much slower on ULE";
}

TEST(ReportTest, TextTableRendersAligned) {
  TextTable t({"a", "bee"});
  t.AddRow({"xxxx", "1"});
  t.AddRow({"y"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("a     bee"), std::string::npos);
  EXPECT_NE(s.find("xxxx  1"), std::string::npos);
  EXPECT_EQ(TextTable::Pct(12.345), "+12.3%");
  EXPECT_EQ(TextTable::Pct(-3.2), "-3.2%");
  EXPECT_EQ(TextTable::Num(1.25, 2), "1.25");
  EXPECT_FALSE(BannerLine("title").empty());
}

}  // namespace
}  // namespace schedbattle
