// Campaign layer tests: combinator label/group semantics, runner ordering,
// aggregation arithmetic, and serial-vs-pool result equivalence.
#include "src/core/campaign.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/apps/registry.h"
#include "src/core/spec.h"

namespace schedbattle {
namespace {

ExperimentSpec QuickSpec(uint64_t seed = 42) {
  ExperimentSpec spec = ExperimentSpec::SingleCore(SchedKind::kCfs, seed);
  spec.scale = 0.02;
  spec.Named("quick");
  spec.Add(RegistryApp("gzip"));
  return spec;
}

TEST(CombinatorTest, BothSchedulersSplitsLabelAndGroup) {
  const std::vector<ExperimentSpec> specs = BothSchedulers(QuickSpec());
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].sched, SchedKind::kCfs);
  EXPECT_EQ(specs[1].sched, SchedKind::kUle);
  EXPECT_EQ(specs[0].label, "quick/cfs");
  EXPECT_EQ(specs[1].label, "quick/ule");
  // Differentiating combinator: the group splits too, so CFS and ULE runs
  // never aggregate together.
  EXPECT_EQ(specs[0].group, "quick/cfs");
  EXPECT_EQ(specs[1].group, "quick/ule");
}

TEST(CombinatorTest, SeedSweepReplicatesWithinOneGroup) {
  const std::vector<ExperimentSpec> specs = SeedSweep(QuickSpec(100), 3);
  ASSERT_EQ(specs.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(specs[i].seed(), 100u + i);
    EXPECT_EQ(specs[i].label, "quick/s" + std::to_string(i));
    // Replicating combinator: group untouched, replicas aggregate together.
    EXPECT_EQ(specs[i].group, "quick");
  }
}

TEST(CombinatorTest, ComposedSweepKeepsPerSchedulerGroups) {
  const std::vector<ExperimentSpec> specs = SeedSweep(BothSchedulers(QuickSpec()), 2);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].label, "quick/cfs/s0");
  EXPECT_EQ(specs[1].label, "quick/cfs/s1");
  EXPECT_EQ(specs[2].label, "quick/ule/s0");
  EXPECT_EQ(specs[3].label, "quick/ule/s1");
  EXPECT_EQ(specs[0].group, specs[1].group);
  EXPECT_EQ(specs[2].group, specs[3].group);
  EXPECT_NE(specs[0].group, specs[2].group);
}

TEST(CombinatorTest, WithVariantsAppliesMutations) {
  const std::vector<SpecVariant> variants = {
      {"stock", [](ExperimentSpec&) {}},
      {"preempt", [](ExperimentSpec& s) { s.ule.wakeup_preemption = true; }},
  };
  const std::vector<ExperimentSpec> specs = WithVariants(QuickSpec(), variants);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].label, "quick/stock");
  EXPECT_EQ(specs[1].label, "quick/preempt");
  EXPECT_NE(specs[0].group, specs[1].group);
  EXPECT_FALSE(specs[0].ule.wakeup_preemption);
  EXPECT_TRUE(specs[1].ule.wakeup_preemption);
}

TEST(AggregateTest, HandComputedMeanAndSampleStddev) {
  const AggregateStat s = AggregateStat::Of({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  // Sample stddev (n-1 denominator): sqrt((2.25+0.25+0.25+2.25)/3).
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(AggregateTest, SingleValueHasZeroStddev) {
  // Regression guard for the n==1 case: the sample-stddev denominator is
  // n-1, so a lone value must short-circuit to 0, never divide to NaN.
  const AggregateStat s = AggregateStat::Of({7.5});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_FALSE(std::isnan(s.stddev));
  // Format must render a clean number, no "nan" leaking into tables/JSON.
  const std::string f = s.Format(1);
  EXPECT_EQ(f.find("nan"), std::string::npos) << f;
  EXPECT_NE(f.find("7.5"), std::string::npos) << f;
}

TEST(CombinatorDeathTest, SeedSweepRejectsNonPositiveRuns) {
  // Flag-validation contract: a non-positive sweep width is a usage error
  // and exits 2 (the CLI's flag-error code), never a silent empty campaign.
  EXPECT_EXIT(SeedSweep(QuickSpec(), 0), ::testing::ExitedWithCode(2),
              "runs must be >= 1");
  EXPECT_EXIT(SeedSweep(QuickSpec(), -3), ::testing::ExitedWithCode(2),
              "runs must be >= 1");
  EXPECT_EXIT(SeedSweep(BothSchedulers(QuickSpec()), 0), ::testing::ExitedWithCode(2),
              "runs must be >= 1");
}

TEST(CampaignRunnerTest, ResultsInSpecOrder) {
  const std::vector<ExperimentSpec> specs = SeedSweep(BothSchedulers(QuickSpec()), 3);
  const std::vector<RunResult> results = CampaignRunner(4).Run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].label, specs[i].label);
    EXPECT_EQ(results[i].seed, specs[i].seed());
    EXPECT_EQ(results[i].sched, specs[i].sched);
  }
}

TEST(CampaignRunnerTest, SerialAndPoolProduceIdenticalResults) {
  const std::vector<ExperimentSpec> specs = SeedSweep(BothSchedulers(QuickSpec()), 2);
  const std::vector<RunResult> serial = CampaignRunner(1).Run(specs);
  const std::vector<RunResult> pool = CampaignRunner(8).Run(specs);
  ASSERT_EQ(serial.size(), pool.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, pool[i].label);
    EXPECT_EQ(serial[i].finish_time, pool[i].finish_time);
    EXPECT_EQ(serial[i].counters.context_switches, pool[i].counters.context_switches);
    EXPECT_EQ(serial[i].counters.wakeups, pool[i].counters.wakeups);
    ASSERT_EQ(serial[i].apps.size(), pool[i].apps.size());
    for (size_t a = 0; a < serial[i].apps.size(); ++a) {
      EXPECT_EQ(serial[i].apps[a].ops, pool[i].apps[a].ops);
      EXPECT_DOUBLE_EQ(serial[i].apps[a].ops_per_sec, pool[i].apps[a].ops_per_sec);
      EXPECT_EQ(serial[i].apps[a].finish_time, pool[i].apps[a].finish_time);
    }
  }
}

TEST(GroupResultsTest, GroupsAggregateReplicasInFirstAppearanceOrder) {
  const std::vector<ExperimentSpec> specs = SeedSweep(BothSchedulers(QuickSpec()), 3);
  const std::vector<RunResult> results = CampaignRunner(0).Run(specs);
  const std::vector<ResultGroup> groups = GroupResults(results);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].group, "quick/cfs");
  EXPECT_EQ(groups[1].group, "quick/ule");
  ASSERT_EQ(groups[0].runs.size(), 3u);
  ASSERT_EQ(groups[1].runs.size(), 3u);

  const AggregateStat cfs = groups[0].AggregateAppMetric(0);
  EXPECT_EQ(cfs.n, 3);
  EXPECT_GT(cfs.mean, 0.0);
  // Aggregate() over a hand-extracted field matches manual arithmetic.
  std::vector<double> ops;
  for (const RunResult* r : groups[0].runs) {
    ops.push_back(static_cast<double>(r->apps[0].ops));
  }
  const AggregateStat manual = AggregateStat::Of(ops);
  const AggregateStat via_group =
      groups[0].Aggregate([](const RunResult& r) { return static_cast<double>(r.apps[0].ops); });
  EXPECT_DOUBLE_EQ(via_group.mean, manual.mean);
  EXPECT_DOUBLE_EQ(via_group.stddev, manual.stddev);
}

TEST(AggregateTest, FormatShowsMeanPlusMinusStddev) {
  AggregateStat s;
  s.n = 3;
  s.mean = 12.345;
  s.stddev = 0.678;
  const std::string f = s.Format(2);
  EXPECT_NE(f.find("12.35"), std::string::npos) << f;
  EXPECT_NE(f.find("0.68"), std::string::npos) << f;
}

}  // namespace
}  // namespace schedbattle
