#include "src/topo/topology.h"

#include "src/sched/types.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace schedbattle {
namespace {

TEST(TopologyTest, Opteron6172Shape) {
  CpuTopology topo = CpuTopology::Opteron6172();
  EXPECT_EQ(topo.num_cores(), 32);
  EXPECT_EQ(topo.GroupsAt(TopoLevel::kNode).size(), 4u);
  EXPECT_EQ(topo.GroupsAt(TopoLevel::kLlc).size(), 4u);
  EXPECT_EQ(topo.GroupsAt(TopoLevel::kMachine).size(), 1u);
  EXPECT_EQ(topo.GroupOf(0, TopoLevel::kNode).size(), 8u);
  EXPECT_EQ(topo.LlcSize(0), 8);
}

TEST(TopologyTest, I7Shape) {
  CpuTopology topo = CpuTopology::I7_3770();
  EXPECT_EQ(topo.num_cores(), 8);
  EXPECT_EQ(topo.GroupsAt(TopoLevel::kSmt).size(), 4u);
  EXPECT_TRUE(topo.SmtSiblings(0, 1));
  EXPECT_FALSE(topo.SmtSiblings(1, 2));
  EXPECT_TRUE(topo.SharesLlc(0, 7));
}

TEST(TopologyTest, NodeAndLlcMembership) {
  CpuTopology topo = CpuTopology::Opteron6172();
  EXPECT_EQ(topo.NodeOf(0), 0);
  EXPECT_EQ(topo.NodeOf(7), 0);
  EXPECT_EQ(topo.NodeOf(8), 1);
  EXPECT_EQ(topo.NodeOf(31), 3);
  EXPECT_TRUE(topo.SameNode(0, 7));
  EXPECT_FALSE(topo.SameNode(7, 8));
  EXPECT_TRUE(topo.SharesLlc(8, 15));
  EXPECT_FALSE(topo.SharesLlc(15, 16));
}

TEST(TopologyTest, CommonLevel) {
  CpuTopology topo = CpuTopology::Opteron6172();
  EXPECT_EQ(topo.CommonLevel(3, 3), TopoLevel::kCore);
  EXPECT_EQ(topo.CommonLevel(0, 1), TopoLevel::kLlc);  // no SMT on this machine
  EXPECT_EQ(topo.CommonLevel(0, 31), TopoLevel::kMachine);

  CpuTopology smt = CpuTopology::I7_3770();
  EXPECT_EQ(smt.CommonLevel(0, 1), TopoLevel::kSmt);
  EXPECT_EQ(smt.CommonLevel(0, 2), TopoLevel::kLlc);
}

TEST(TopologyTest, GroupsPartitionTheMachine) {
  CpuTopology topo = CpuTopology::Opteron6172();
  for (TopoLevel level : {TopoLevel::kSmt, TopoLevel::kLlc, TopoLevel::kNode}) {
    int total = 0;
    for (const auto& group : topo.GroupsAt(level)) {
      total += static_cast<int>(group.size());
    }
    EXPECT_EQ(total, topo.num_cores()) << "level " << static_cast<int>(level);
  }
}

TEST(TopologyTest, GroupOfContainsSelf) {
  CpuTopology topo = CpuTopology::Opteron6172();
  for (CoreId c = 0; c < topo.num_cores(); ++c) {
    for (TopoLevel level :
         {TopoLevel::kCore, TopoLevel::kSmt, TopoLevel::kLlc, TopoLevel::kNode,
          TopoLevel::kMachine}) {
      const auto& group = topo.GroupOf(c, level);
      EXPECT_NE(std::find(group.begin(), group.end(), c), group.end());
    }
  }
}

TEST(TopologyTest, FlatMachine) {
  CpuTopology topo = CpuTopology::Flat(6);
  EXPECT_EQ(topo.num_cores(), 6);
  EXPECT_EQ(topo.GroupsAt(TopoLevel::kNode).size(), 1u);
  EXPECT_TRUE(topo.SharesLlc(0, 5));
  EXPECT_FALSE(topo.Describe().empty());
}

TEST(CpuMaskTest, Basics) {
  CpuMask m = CpuMask::AllOf(8);
  EXPECT_EQ(m.Count(), 8);
  EXPECT_TRUE(m.Test(7));
  EXPECT_FALSE(m.Test(8));
  m.Clear(3);
  EXPECT_FALSE(m.Test(3));
  EXPECT_EQ(m.Count(), 7);
  m.Set(3);
  EXPECT_EQ(m, CpuMask::AllOf(8));
  EXPECT_EQ(CpuMask::Single(5).Count(), 1);
  EXPECT_TRUE(CpuMask().Empty());
  EXPECT_EQ(CpuMask::AllOf(64).Count(), 64);
}

}  // namespace
}  // namespace schedbattle
