// Machine + scheduler integration smoke tests, parameterized over both
// schedulers: the same workload must complete correctly under CFS and ULE.
#include "src/sched/machine.h"

#include <gtest/gtest.h>

#include <memory>

#include "tests/test_util.h"

namespace schedbattle {
namespace {

class MachineTest : public ::testing::TestWithParam<std::string> {
 protected:
  void Build(int cores) {
    machine_ = std::make_unique<Machine>(&engine_, CpuTopology::Flat(cores),
                                         MakeScheduler(GetParam()));
  }
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
};

TEST_P(MachineTest, SingleComputeThreadRunsToCompletion) {
  Build(1);
  machine_->Boot();
  ThreadSpec spec;
  spec.name = "worker";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(100)).Build(), Rng(1));
  SimThread* t = machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_GE(t->total_runtime, Milliseconds(100));
  EXPECT_LT(t->total_runtime, Milliseconds(105));
  EXPECT_GE(t->exit_time, Milliseconds(100));
}

TEST_P(MachineTest, TwoThreadsShareOneCoreFairly) {
  Build(1);
  machine_->Boot();
  auto script = ScriptBuilder().Compute(Seconds(5)).Build();
  ThreadSpec a;
  a.name = "a";
  a.body = MakeScriptBody(script, Rng(1));
  ThreadSpec b;
  b.name = "b";
  b.body = MakeScriptBody(script, Rng(2));
  SimThread* ta = machine_->Spawn(std::move(a), nullptr);
  SimThread* tb = machine_->Spawn(std::move(b), nullptr);
  engine_.RunUntil(Seconds(6));
  // Both CPU hogs: each should have received roughly half the core.
  const double ra = ToSeconds(ta->RuntimeAt(engine_.now()));
  const double rb = ToSeconds(tb->RuntimeAt(engine_.now()));
  EXPECT_NEAR(ra, 3.0, 0.35);
  EXPECT_NEAR(rb, 3.0, 0.35);
  EXPECT_NEAR(ra + rb, 6.0, 0.1);  // the core never idles
}

TEST_P(MachineTest, SleepWakesAtTheRightTime) {
  Build(1);
  machine_->Boot();
  ThreadSpec spec;
  spec.name = "sleeper";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Compute(Milliseconds(10))
                                 .Sleep(Milliseconds(50))
                                 .Compute(Milliseconds(10))
                                 .Build(),
                             Rng(1));
  SimThread* t = machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_GE(t->exit_time, Milliseconds(70));
  EXPECT_GE(t->total_sleep, Milliseconds(50));
  EXPECT_NEAR(ToSeconds(t->total_runtime), 0.020, 0.001);
}

TEST_P(MachineTest, ThreadsSpreadAcrossCores) {
  Build(4);
  machine_->Boot();
  auto script = ScriptBuilder().Compute(Seconds(1)).Build();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 4; ++i) {
    ThreadSpec spec;
    spec.name = "hog" + std::to_string(i);
    spec.body = MakeScriptBody(script, Rng(i));
    threads.push_back(machine_->Spawn(std::move(spec), nullptr));
  }
  engine_.RunUntil(Seconds(2));
  for (SimThread* t : threads) {
    EXPECT_EQ(t->state(), ThreadState::kDead);
    // With 4 cores and 4 hogs each should finish in ~1s of wall time.
    EXPECT_LT(t->exit_time, Milliseconds(1200)) << t->name();
  }
}

TEST_P(MachineTest, MutexProvidesExclusionAndHandoff) {
  Build(2);
  machine_->Boot();
  auto mu = std::make_shared<SimMutex>();
  auto in_critical = std::make_shared<int>(0);
  auto max_in_critical = std::make_shared<int>(0);
  auto script = ScriptBuilder()
                    .Loop(50)
                    .Lock(mu.get())
                    .Call([in_critical, max_in_critical](ScriptEnv&) {
                      *max_in_critical = std::max(*max_in_critical, ++*in_critical);
                    })
                    .Compute(Microseconds(100))
                    .Call([in_critical](ScriptEnv&) { --*in_critical; })
                    .Unlock(mu.get())
                    .Compute(Microseconds(50))
                    .EndLoop()
                    .Build();
  for (int i = 0; i < 4; ++i) {
    ThreadSpec spec;
    spec.name = "locker" + std::to_string(i);
    spec.body = MakeScriptBody(script, Rng(i));
    machine_->Spawn(std::move(spec), nullptr);
  }
  engine_.RunUntil(Seconds(5));
  EXPECT_EQ(machine_->alive_threads(), 0);
  EXPECT_EQ(*max_in_critical, 1) << "mutual exclusion violated";
}

TEST_P(MachineTest, BarrierReleasesAllParties) {
  Build(2);
  machine_->Boot();
  auto bar = std::make_shared<SimBarrier>(3);
  auto passed = std::make_shared<int>(0);
  auto script = ScriptBuilder()
                    .Compute(Milliseconds(1))
                    .Barrier(bar.get())
                    .Call([passed](ScriptEnv&) { ++*passed; })
                    .Build();
  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "b" + std::to_string(i);
    spec.body = MakeScriptBody(script, Rng(i));
    machine_->Spawn(std::move(spec), nullptr);
  }
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(*passed, 3);
  EXPECT_EQ(machine_->alive_threads(), 0);
}

TEST_P(MachineTest, PipeTransfersMessages) {
  Build(2);
  machine_->Boot();
  auto pipe = std::make_shared<SimPipe>();
  auto received = std::make_shared<int>(0);
  auto writer = ScriptBuilder()
                    .Loop(20)
                    .Compute(Microseconds(100))
                    .PipeWrite(pipe.get())
                    .EndLoop()
                    .Build();
  auto reader = ScriptBuilder()
                    .Loop(20)
                    .PipeRead(pipe.get())
                    .Call([received](ScriptEnv&) { ++*received; })
                    .Compute(Microseconds(10))
                    .EndLoop()
                    .Build();
  ThreadSpec w;
  w.name = "writer";
  w.body = MakeScriptBody(writer, Rng(1));
  ThreadSpec r;
  r.name = "reader";
  r.body = MakeScriptBody(reader, Rng(2));
  machine_->Spawn(std::move(w), nullptr);
  machine_->Spawn(std::move(r), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(*received, 20);
  EXPECT_EQ(machine_->alive_threads(), 0);
}

TEST_P(MachineTest, PinnedThreadStaysOnItsCore) {
  Build(4);
  machine_->Boot();
  ThreadSpec spec;
  spec.name = "pinned";
  spec.affinity = CpuMask::Single(2);
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(10)
                                 .Compute(Milliseconds(5))
                                 .Sleep(Milliseconds(1))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  SimThread* t = machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_EQ(t->last_ran_cpu(), 2);
  EXPECT_EQ(t->migrations, 0u);
}

TEST_P(MachineTest, DeterministicAcrossRuns) {
  auto run_once = [&]() -> SimDuration {
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(2), MakeScheduler(GetParam()));
    machine.Boot();
    auto script = ScriptBuilder()
                      .Loop(100)
                      .ComputeFn([](ScriptEnv& env) {
                        return static_cast<SimDuration>(env.rng.NextExponential(50000.0));
                      })
                      .SleepFn([](ScriptEnv& env) {
                        return static_cast<SimDuration>(env.rng.NextExponential(20000.0));
                      })
                      .EndLoop()
                      .Build();
    SimThread* last = nullptr;
    for (int i = 0; i < 5; ++i) {
      ThreadSpec spec;
      spec.name = "t" + std::to_string(i);
      spec.body = MakeScriptBody(script, Rng(i * 7 + 1));
      last = machine.Spawn(std::move(spec), nullptr);
    }
    engine.RunUntil(Seconds(10));
    return last->exit_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(MachineTest, CountersAreConsistent) {
  Build(2);
  machine_->Boot();
  auto script = ScriptBuilder()
                    .Loop(10)
                    .Compute(Milliseconds(2))
                    .Sleep(Milliseconds(1))
                    .EndLoop()
                    .Build();
  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "w" + std::to_string(i);
    spec.body = MakeScriptBody(script, Rng(i + 1));
    machine_->Spawn(std::move(spec), nullptr);
  }
  engine_.RunUntil(Seconds(2));
  const MachineCounters& c = machine_->counters();
  EXPECT_EQ(c.forks, 3u);
  EXPECT_EQ(c.exits, 3u);
  EXPECT_EQ(c.wakeups, 30u);  // 10 sleeps per thread
  EXPECT_GT(c.context_switches, 0u);
  EXPECT_GE(machine_->OverheadFraction(), 0.0);
  EXPECT_LT(machine_->OverheadFraction(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, MachineTest, ::testing::Values("cfs", "ule"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace schedbattle
