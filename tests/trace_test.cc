// SchedTrace / MachineObserver tests.
#include "src/metrics/trace.h"

#include <gtest/gtest.h>

#include "src/cfs/cfs_sched.h"
#include "src/workload/script.h"

namespace schedbattle {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&engine_, CpuTopology::Flat(2),
                                         std::make_unique<CfsScheduler>());
    machine_->Boot();
  }
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
};

TEST_F(TraceTest, RecordsLifecycleEvents) {
  SchedTrace trace(machine_.get());
  ThreadSpec spec;
  spec.name = "worker";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Compute(Milliseconds(5))
                                 .Sleep(Milliseconds(2))
                                 .Compute(Milliseconds(1))
                                 .Build(),
                             Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));

  const auto events = trace.Events();
  int forks = 0, dispatches = 0, blocks = 0, wakes = 0, exits = 0;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::kFork:
        ++forks;
        break;
      case TraceEvent::Kind::kDispatch:
        ++dispatches;
        break;
      case TraceEvent::Kind::kWake:
        ++wakes;
        break;
      case TraceEvent::Kind::kDeschedule:
        if (e.reason == 'B') {
          ++blocks;
        }
        if (e.reason == 'X') {
          ++exits;
        }
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(forks, 1);
  EXPECT_GE(dispatches, 2);  // before and after the sleep
  EXPECT_EQ(blocks, 1);
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(exits, 1);
  // Chronological order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t, events[i - 1].t);
  }
}

TEST_F(TraceTest, DispatchDescheduleAlternatePerCore) {
  SchedTrace trace(machine_.get());
  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.affinity = CpuMask::Single(0);
    spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(50)).Build(), Rng(i + 1));
    machine_->Spawn(std::move(spec), nullptr);
  }
  engine_.RunUntil(Seconds(1));
  // On core 0 the dispatch/deschedule events must strictly alternate.
  bool open = false;
  ThreadId running = kInvalidThread;
  for (const TraceEvent& e : trace.Events()) {
    if (e.core != 0) {
      continue;
    }
    if (e.kind == TraceEvent::Kind::kDispatch) {
      EXPECT_FALSE(open) << "dispatch while another thread is on-core";
      open = true;
      running = e.thread;
    } else if (e.kind == TraceEvent::Kind::kDeschedule) {
      EXPECT_TRUE(open);
      EXPECT_EQ(e.thread, running);
      open = false;
    }
  }
}

TEST_F(TraceTest, RingBufferDropsOldest) {
  SchedTrace trace(machine_.get(), /*capacity=*/64);
  ThreadSpec spec;
  spec.name = "churn";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(200)
                                 .Compute(Microseconds(100))
                                 .Sleep(Microseconds(100))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(trace.size(), 64u);
  EXPECT_GT(trace.dropped(), 100u);
  const auto events = trace.Events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t, events[i - 1].t) << "ring buffer must unwrap chronologically";
  }
}

TEST_F(TraceTest, TextAndJsonOutputs) {
  SchedTrace trace(machine_.get());
  ThreadSpec spec;
  spec.name = "hello";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(1)).Build(), Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("DISPATCH"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
  const std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("hello"), std::string::npos);
}

TEST_F(TraceTest, DetachStopsRecording) {
  SchedTrace trace(machine_.get());
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(5)).Build(), Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Milliseconds(1));
  trace.Detach();
  const size_t n = trace.size();
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(trace.size(), n);
  EXPECT_EQ(machine_->observer(), nullptr);
}

}  // namespace
}  // namespace schedbattle
