// SchedTrace / MachineObserver tests.
#include "src/metrics/trace.h"

#include <gtest/gtest.h>

#include "src/cfs/cfs_sched.h"
#include "src/workload/script.h"
#include "tests/minijson.h"

namespace schedbattle {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&engine_, CpuTopology::Flat(2),
                                         std::make_unique<CfsScheduler>());
    machine_->Boot();
  }
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
};

TEST_F(TraceTest, RecordsLifecycleEvents) {
  SchedTrace trace(machine_.get());
  ThreadSpec spec;
  spec.name = "worker";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Compute(Milliseconds(5))
                                 .Sleep(Milliseconds(2))
                                 .Compute(Milliseconds(1))
                                 .Build(),
                             Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));

  const auto events = trace.Events();
  int forks = 0, dispatches = 0, blocks = 0, wakes = 0, exits = 0;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::kFork:
        ++forks;
        break;
      case TraceEvent::Kind::kDispatch:
        ++dispatches;
        break;
      case TraceEvent::Kind::kWake:
        ++wakes;
        break;
      case TraceEvent::Kind::kDeschedule:
        if (e.reason == 'B') {
          ++blocks;
        }
        if (e.reason == 'X') {
          ++exits;
        }
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(forks, 1);
  EXPECT_GE(dispatches, 2);  // before and after the sleep
  EXPECT_EQ(blocks, 1);
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(exits, 1);
  // Chronological order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t, events[i - 1].t);
  }
}

TEST_F(TraceTest, DispatchDescheduleAlternatePerCore) {
  SchedTrace trace(machine_.get());
  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.affinity = CpuMask::Single(0);
    spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(50)).Build(), Rng(i + 1));
    machine_->Spawn(std::move(spec), nullptr);
  }
  engine_.RunUntil(Seconds(1));
  // On core 0 the dispatch/deschedule events must strictly alternate.
  bool open = false;
  ThreadId running = kInvalidThread;
  for (const TraceEvent& e : trace.Events()) {
    if (e.core != 0) {
      continue;
    }
    if (e.kind == TraceEvent::Kind::kDispatch) {
      EXPECT_FALSE(open) << "dispatch while another thread is on-core";
      open = true;
      running = e.thread;
    } else if (e.kind == TraceEvent::Kind::kDeschedule) {
      EXPECT_TRUE(open);
      EXPECT_EQ(e.thread, running);
      open = false;
    }
  }
}

TEST_F(TraceTest, RingBufferDropsOldest) {
  SchedTrace trace(machine_.get(), /*capacity=*/64);
  ThreadSpec spec;
  spec.name = "churn";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(200)
                                 .Compute(Microseconds(100))
                                 .Sleep(Microseconds(100))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(trace.size(), 64u);
  EXPECT_GT(trace.dropped(), 100u);
  const auto events = trace.Events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t, events[i - 1].t) << "ring buffer must unwrap chronologically";
  }
}

TEST_F(TraceTest, TextAndJsonOutputs) {
  SchedTrace trace(machine_.get());
  ThreadSpec spec;
  spec.name = "hello";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(1)).Build(), Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("DISPATCH"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
  const std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("hello"), std::string::npos);
}

TEST_F(TraceTest, DetachStopsRecording) {
  SchedTrace trace(machine_.get());
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(5)).Build(), Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Milliseconds(1));
  trace.Detach();
  const size_t n = trace.size();
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(trace.size(), n);
  EXPECT_FALSE(machine_->observers().Contains(&trace));
  EXPECT_FALSE(machine_->has_observers());
}

TEST_F(TraceTest, RingBufferWraparoundMatchesUnboundedSuffix) {
  // A bounded and an unbounded trace attached simultaneously (through the
  // observer bus) must agree: the bounded trace holds exactly the last
  // `capacity` events of the unbounded one, and dropped() accounts for the
  // rest. This pins down both the wraparound ordering and the bus fan-out.
  constexpr size_t kCap = 16;
  SchedTrace bounded(machine_.get(), kCap);
  SchedTrace unbounded(machine_.get());
  ThreadSpec spec;
  spec.name = "churn";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(50)
                                 .Compute(Microseconds(100))
                                 .Sleep(Microseconds(100))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));

  const auto all = unbounded.Events();
  const auto tail = bounded.Events();
  ASSERT_GT(all.size(), kCap);
  ASSERT_EQ(tail.size(), kCap);
  EXPECT_EQ(bounded.dropped(), all.size() - kCap);
  const size_t offset = all.size() - kCap;
  for (size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(tail[i].t, all[offset + i].t) << "index " << i;
    EXPECT_EQ(tail[i].kind, all[offset + i].kind) << "index " << i;
    EXPECT_EQ(tail[i].thread, all[offset + i].thread) << "index " << i;
    EXPECT_EQ(tail[i].core, all[offset + i].core) << "index " << i;
  }
}

TEST_F(TraceTest, ChromeJsonParsesWithCountersAndFlows) {
  SchedTrace trace(machine_.get());
  ThreadSpec spec;
  spec.name = "worker";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(5)
                                 .Compute(Milliseconds(1))
                                 .Sleep(Milliseconds(1))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));

  const std::string json = trace.ToChromeJson();
  const minijson::Value root = minijson::Parse(json);
  const auto& events = root.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  int counters = 0, flow_starts = 0, flow_ends = 0, slices = 0;
  bool saw_rq_counter = false;
  for (const minijson::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "C") {
      ++counters;
      const std::string& name = e.at("name").as_string();
      if (name.rfind("runqueue core", 0) == 0) {
        saw_rq_counter = true;
        EXPECT_GE(e.at("args").at("runnable").as_number(), 0.0);
      }
    } else if (ph == "s") {
      ++flow_starts;
      EXPECT_EQ(e.at("cat").as_string(), "wakeup");
    } else if (ph == "f") {
      ++flow_ends;
      EXPECT_EQ(e.at("bp").as_string(), "e");
    } else if (ph == "X") {
      ++slices;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
  }
  EXPECT_GT(counters, 0);
  EXPECT_TRUE(saw_rq_counter);
  EXPECT_GT(slices, 0);
  // 5 sleeps -> 5 wakes, each linked to the dispatch that serviced it.
  EXPECT_GE(flow_starts, 5);
  EXPECT_EQ(flow_starts, flow_ends);
}

}  // namespace
}  // namespace schedbattle
