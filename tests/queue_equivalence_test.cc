// Queue-backend correctness: the timing wheel (--queue=wheel) is a pure
// data-structure swap. Both EventQueue backends promise the same (time, seq)
// total order, so every observable — schedstats snapshots, decision logs,
// finish times, machine counters, monitor verdicts — must be byte-identical
// between a heap run and a wheel run of the same spec. These tests execute
// the paper's figure scenarios, the serving preset across every registered
// scheduler class, and a generated fuzz corpus with both backends and
// compare everything, including the compositions with the sharded engine
// and with eager (tickless-off) ticks.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/check/fuzz.h"
#include "src/core/scenarios.h"
#include "src/core/spec.h"
#include "src/sched/registry.h"
#include "src/sim/engine.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

// Runs `spec` once per backend and asserts full observational equivalence.
// `expect_clean` additionally requires a silent MonitorSuite; fig6 trips the
// work-conservation monitor by construction, so it only asserts the verdicts
// match across backends.
void ExpectQueueEquivalent(ExperimentSpec spec, const std::string& what,
                           bool expect_clean = true) {
  spec.collect_schedstats = true;
  spec.collect_decision_log = true;
  spec.check_invariants = true;
  ExperimentSpec heap = spec;
  heap.queue = QueueKind::kHeap;
  ExperimentSpec wheel = spec;
  wheel.queue = QueueKind::kWheel;
  const RunResult h = ExecuteSpec(heap);
  const RunResult w = ExecuteSpec(wheel);
  ASSERT_FALSE(h.schedstats_json.empty()) << what;
  if (expect_clean) {
    EXPECT_EQ(h.violations, 0u) << what << "\n" << h.violation_report;
  }
  EXPECT_EQ(h.violations, w.violations) << what;
  EXPECT_EQ(h.violation_report, w.violation_report) << what;
  EXPECT_EQ(h.schedstats_json, w.schedstats_json)
      << what << ": schedstats diverged between heap and wheel runs";
  EXPECT_EQ(h.decision_log, w.decision_log)
      << what << ": decision logs diverged between heap and wheel runs";
  EXPECT_EQ(h.finish_time, w.finish_time) << what;
  EXPECT_EQ(h.counters.context_switches, w.counters.context_switches) << what;
  EXPECT_EQ(h.counters.migrations, w.counters.migrations) << what;
}

// Figure 1 / Table 2: fibo + sysbench competing on one core.
TEST(QueueEquivalenceTest, Fig1FiboSysbenchIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    auto out = std::make_shared<FiboSysbenchResult>();
    ExpectQueueEquivalent(FiboSysbenchSpec(kind, 42, 0.05, out),
                          std::string("fig1/") + std::string(SchedName(kind)));
  }
}

// Figure 6: 512 spinners pinned to core 0 then unpinned — long timer-heavy
// idle stretches followed by a balancer storm.
TEST(QueueEquivalenceTest, Fig6LoadBalanceIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    auto out = std::make_shared<LoadBalanceResult>();
    ExpectQueueEquivalent(LoadBalanceSpec(kind, 42, Seconds(20), 1, out),
                          std::string("fig6/") + std::string(SchedName(kind)),
                          /*expect_clean=*/false);
  }
}

// Figure 9 style: two suite applications co-scheduled on the paper's NUMA
// machine with background system noise.
TEST(QueueEquivalenceTest, Fig9MultiAppIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    ExperimentSpec spec = ExperimentSpec::Multicore(kind, 42);
    spec.scale = 0.02;
    spec.horizon = Seconds(30);
    spec.Named("queue-fig9");
    spec.Add(RegistryApp("apache"));
    spec.Add(RegistryApp("sysbench"));
    ExpectQueueEquivalent(spec, std::string("fig9/") + std::string(SchedName(kind)));
  }
}

// The open-loop serving preset — the deep-queue regime the wheel exists for —
// across every registered scheduler class, not just the paper's pair.
TEST(QueueEquivalenceTest, ServeSmokeIsByteIdenticalForAllClasses) {
  for (SchedKind kind : SchedulerRegistry::Instance().AllKinds()) {
    ExpectQueueEquivalent(ServeSpec("serve-smoke", kind, 42, 0.1),
                          std::string("serve-smoke/") + std::string(SchedName(kind)));
  }
}

// The backend knob must compose with the sharded engine: per-lane wheels and
// per-lane heaps must produce the same global merge order at every shard
// count, not just in the serial engine.
TEST(QueueEquivalenceTest, ComposesWithShardedEngine) {
  for (int shards : {1, 2, 4}) {
    ExperimentSpec spec = ExperimentSpec::Multicore(SchedKind::kUle, 42);
    spec.scale = 0.02;
    spec.horizon = Seconds(30);
    spec.shards = shards;
    spec.Named("queue-shards");
    spec.Add(RegistryApp("apache"));
    ExpectQueueEquivalent(spec, "shards=" + std::to_string(shards));
  }
}

// ... and with eager ticks: tickless-off runs schedule far more timer events
// (every grid tick is real), a different load shape for the wheel's cascades.
TEST(QueueEquivalenceTest, ComposesWithEagerTicks) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    auto out = std::make_shared<FiboSysbenchResult>();
    ExperimentSpec spec = FiboSysbenchSpec(kind, 42, 0.05, out);
    spec.machine.tickless = false;
    ExpectQueueEquivalent(spec, std::string("eager/") + std::string(SchedName(kind)));
  }
}

// 25 generated fuzz specs x both schedulers = 50 randomized workloads
// (mutexes, pipes, barriers, odd machine shapes), each run on both backends.
TEST(QueueEquivalenceTest, FuzzCorpusIsByteIdentical) {
  Rng root(7);
  int runs = 0;
  for (int i = 0; i < 25; ++i) {
    Rng stream = root.Split();
    const FuzzSpec base = GenerateFuzzSpec(&stream, SchedKind::kCfs, 0.05);
    for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
      FuzzSpec s = base;
      s.sched = kind;
      ExperimentSpec spec = s.ToExperimentSpec();
      ExpectQueueEquivalent(spec, s.Label());
      ++runs;
    }
  }
  EXPECT_EQ(runs, 50);
}

}  // namespace
}  // namespace schedbattle
