// ServingApp unit tests: open-loop bookkeeping (admitted/completed/goodput),
// deadline accounting, max_requests bounding, determinism, and the serve
// scenario presets' result plumbing.
#include "src/apps/serving.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/core/scenarios.h"
#include "src/core/spec.h"

namespace schedbattle {
namespace {

// A small, fast configuration: 4 cores, 8 workers, ~60% utilization.
ServingParams SmallParams() {
  ServingParams p = ApacheServeDefaults();
  p.workers = 8;
  p.service_compute = Milliseconds(2);
  p.arrivals.rate_per_sec = 1200;
  p.arrivals_until = Milliseconds(200);
  p.deadline = Milliseconds(50);
  return p;
}

ExperimentSpec SmallSpec(SchedKind kind, ServingParams params, uint64_t seed = 42) {
  ExperimentSpec spec;
  spec.sched = kind;
  spec.topology = CpuTopology::Flat(4).config();
  spec.machine.seed = seed;
  spec.horizon = params.arrivals_until + Milliseconds(500);
  spec.Named("serving-test");
  AppSpec app;
  app.name = params.name;
  app.has_metric = true;
  app.metric = MetricKind::kOpsPerSec;
  app.make = [params](int, uint64_t s, double) {
    ServingParams p = params;
    p.seed = s;
    p.arrivals.seed = s * 31 + 7;
    return MakeServing(p);
  };
  spec.Add(app);
  return spec;
}

const ServingApp* AppOf(const SpecRunContext& ctx) {
  return dynamic_cast<const ServingApp*>(ctx.apps[0]);
}

TEST(ServingTest, ModelDefaultsFillZeroFields) {
  ServingParams p;
  p.model = ServiceModel::kRocksdb;
  p.service_compute = Milliseconds(1);  // explicit override survives
  auto app = MakeServing(p);
  const auto* serving = dynamic_cast<const ServingApp*>(app.get());
  ASSERT_NE(serving, nullptr);
  EXPECT_EQ(serving->params().service_compute, Milliseconds(1));
  EXPECT_DOUBLE_EQ(serving->params().write_fraction, 0.25);
  EXPECT_EQ(serving->params().write_stall, Microseconds(2500));
}

TEST(ServingTest, ServesEveryAdmittedRequest) {
  ExperimentSpec spec = SmallSpec(SchedKind::kCfs, SmallParams());
  int64_t admitted = 0, completed = 0, good = 0;
  bool finished = false;
  spec.hooks.on_finish = [&](SpecRunContext& ctx, RunResult&) {
    const ServingApp* app = AppOf(ctx);
    ASSERT_NE(app, nullptr);
    admitted = app->admitted();
    completed = app->completed();
    good = app->good();
    finished = app->finished();
  };
  const RunResult r = ExecuteSpec(spec);
  // ~240 expected arrivals in the 200ms window; the drain window is ample.
  EXPECT_GT(admitted, 150);
  EXPECT_EQ(completed, admitted);
  EXPECT_TRUE(finished);
  EXPECT_GT(good, 0);
  EXPECT_LE(good, completed);
  EXPECT_EQ(r.apps[0].ops, static_cast<uint64_t>(completed));
}

TEST(ServingTest, MaxRequestsBoundsAdmission) {
  ServingParams p = SmallParams();
  p.max_requests = 25;
  ExperimentSpec spec = SmallSpec(SchedKind::kUle, p);
  int64_t admitted = 0, completed = 0;
  spec.hooks.on_finish = [&](SpecRunContext& ctx, RunResult&) {
    admitted = AppOf(ctx)->admitted();
    completed = AppOf(ctx)->completed();
  };
  ExecuteSpec(spec);
  EXPECT_EQ(admitted, 25);
  EXPECT_EQ(completed, 25);
}

TEST(ServingTest, TightDeadlineShrinksGoodput) {
  ServingParams p = SmallParams();
  p.deadline = Microseconds(100);  // under the 2ms mean service time
  ExperimentSpec spec = SmallSpec(SchedKind::kCfs, p);
  int64_t admitted = 0, good = 0;
  double fraction = 1.0;
  spec.hooks.on_finish = [&](SpecRunContext& ctx, RunResult&) {
    admitted = AppOf(ctx)->admitted();
    good = AppOf(ctx)->good();
    fraction = AppOf(ctx)->GoodputFraction();
  };
  ExecuteSpec(spec);
  EXPECT_GT(admitted, 0);
  EXPECT_LT(good, admitted);
  EXPECT_LT(fraction, 1.0);
}

TEST(ServingTest, IdenticalSpecsProduceIdenticalResults) {
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(round);
    auto run = [] {
      ExperimentSpec spec = SmallSpec(SchedKind::kUle, SmallParams());
      struct Out {
        int64_t admitted = 0;
        int64_t good = 0;
        SimDuration p99 = 0;
      } out;
      spec.hooks.on_finish = [&out](SpecRunContext& ctx, RunResult&) {
        out.admitted = AppOf(ctx)->admitted();
        out.good = AppOf(ctx)->good();
        out.p99 = AppOf(ctx)->stats().latency.Percentile(99);
      };
      const RunResult r = ExecuteSpec(spec);
      return std::make_tuple(out.admitted, out.good, out.p99, r.finish_time);
    };
    EXPECT_EQ(run(), run());
  }
}

TEST(ServingTest, TailSeriesCoversTheRun) {
  ExperimentSpec spec = SmallSpec(SchedKind::kCfs, SmallParams());
  std::string tail_json;
  spec.hooks.on_finish = [&](SpecRunContext& ctx, RunResult&) {
    tail_json = AppOf(ctx)->tail().ToJson();
  };
  ExecuteSpec(spec);
  EXPECT_NE(tail_json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(tail_json.find("\"start_ns\""), std::string::npos);
}

// ---- scenario presets ----

TEST(ServingScenarioTest, PresetListIsConsistent) {
  EXPECT_EQ(ServePresets().size(), 6u);
  for (const std::string& p : ServePresets()) {
    SCOPED_TRACE(p);
    EXPECT_TRUE(IsServePreset(p));
    EXPECT_GT(ServePresetCores(p), 0);
  }
  EXPECT_FALSE(IsServePreset("fig1"));
  EXPECT_FALSE(IsServePreset("serve-nope"));
  EXPECT_EQ(ServePresetCores("serve-nope"), 0);
  EXPECT_EQ(ServePresetCores("serve1024"), 1024);
  EXPECT_EQ(ServePresetCores("serve-smoke"), 16);
}

TEST(ServingScenarioTest, SmokePresetFillsResult) {
  const ServeResult r = RunServe("serve-smoke", SchedKind::kCfs, 42, /*scale=*/0.1);
  EXPECT_EQ(r.sched, SchedKind::kCfs);
  EXPECT_GT(r.admitted, 0);
  EXPECT_EQ(r.completed, r.admitted);
  EXPECT_GT(r.goodput_fraction, 0.9);
  EXPECT_GT(r.request_p50, 0);
  EXPECT_LE(r.request_p50, r.request_p99);
  EXPECT_LE(r.request_p99, r.request_p999);
  EXPECT_LE(r.request_p999, r.request_max);
  EXPECT_FALSE(r.tail_series_json.empty());
}

TEST(ServingScenarioTest, SpecCarriesRequestSlos) {
  const ExperimentSpec spec = ServeSpec("serve-smoke", SchedKind::kUle, 42, 0.1);
  ASSERT_FALSE(spec.slo.empty());
  for (const SloObjective& o : spec.slo) {
    EXPECT_TRUE(IsRequestMetric(o.metric));
  }
  const RunResult r = ExecuteSpec(spec);
  ASSERT_EQ(r.slo_verdicts.size(), spec.slo.size());
  for (const SloVerdict& v : r.slo_verdicts) {
    EXPECT_GT(v.observed, 0);
  }
}

}  // namespace
}  // namespace schedbattle
