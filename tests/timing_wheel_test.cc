// Timing-wheel backend unit tests: the wheel-specific structural cases that
// the scenario-level byte-identity suite (tests/queue_equivalence_test.cc)
// exercises only incidentally — same-slot tie order, cancellation of nodes
// that have been cascaded between levels, far-future overflow promotion,
// slot-index rollover at the byte and horizon boundaries — plus a randomized
// heap-vs-wheel pop-order property test on mirrored operation sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace schedbattle {
namespace {

// The wheel spans 4 levels x 8 bits: events at or beyond 2^32 ns from the
// current time go to the overflow heap (see src/sim/timing_wheel.h).
constexpr SimTime kHorizon = SimTime{1} << 32;

// Pops everything, returning the fired ids in order. Each scheduled callback
// appends its id; cancelled events must never appear.
std::vector<int> DrainIds(EventQueue& q, std::vector<int>& fired) {
  SimTime when = 0;
  while (!q.empty()) {
    q.PopNext(&when)();
  }
  return fired;
}

TEST(TimingWheelTest, SameSlotTiesFireInInsertionOrder) {
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  // All five land in the same level-0 slot; the facade's internal sequence
  // numbers are monotone, so pop order must equal insertion order.
  for (int i = 0; i < 5; ++i) {
    q.Post(100, [&fired, i] { fired.push_back(i); });
  }
  DrainIds(q, fired);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimingWheelTest, SameSlotOutOfOrderSeqsFireInSeqOrder) {
  // The sharded engine hands queues explicit sequence numbers, which can
  // arrive out of insertion order — the slot list must stay (time, seq)
  // sorted, exercising the non-tail-append insert path.
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  for (uint64_t seq : {5, 1, 3, 2, 4}) {
    q.PostWithSeq(100, seq, [&fired, seq] { fired.push_back(static_cast<int>(seq)); });
  }
  // A later time with a smaller seq must still fire after every t=100 event.
  q.PostWithSeq(101, 0, [&fired] { fired.push_back(100); });
  DrainIds(q, fired);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4, 5, 100}));
}

TEST(TimingWheelTest, CancelAfterCascadeStillWorks) {
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  // Both start on level 1 (byte 1 of 260 and 300 differs from cur=0).
  EventHandle victim = q.Schedule(300, [&fired] { fired.push_back(300); });
  q.Post(260, [&fired] { fired.push_back(260); });
  SimTime when = 0;
  q.PopNext(&when)();  // cascades the level-1 slot down to level 0
  EXPECT_EQ(when, 260);
  // The victim's node now sits in a level-0 slot; the handle must still
  // resolve and cancel it there.
  EXPECT_TRUE(q.Cancel(victim));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kTimeNever);
  EXPECT_EQ(fired, (std::vector<int>{260}));
  // Stale handle on a fired/cancelled event: no-op, including copies.
  EventHandle copy = victim;
  EXPECT_FALSE(q.Cancel(copy));
}

TEST(TimingWheelTest, CancelledEventsNeverFire) {
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(q.Schedule(50 + 10 * i, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 2) {
    EXPECT_TRUE(q.Cancel(handles[i]));
  }
  EXPECT_EQ(q.size(), 10u);
  DrainIds(q, fired);
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}));
}

TEST(TimingWheelTest, FarFutureOverflowPromotesIntoWheel) {
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  const SimTime far1 = 5'000'000'000;  // ~5s: beyond the 2^32 ns horizon
  const SimTime far2 = 6'000'000'000;
  q.Post(far2, [&fired] { fired.push_back(2); });
  q.Post(far1, [&fired] { fired.push_back(1); });
  q.Post(100, [&fired] { fired.push_back(0); });
  EXPECT_EQ(q.NextTime(), 100);
  SimTime when = 0;
  q.PopNext(&when)();
  EXPECT_EQ(when, 100);
  // Popping the first overflow event advances the clock to ~5s, which brings
  // the ~6s event inside the horizon: it must be promoted into the wheel and
  // still pop in order.
  q.PopNext(&when)();
  EXPECT_EQ(when, far1);
  EXPECT_EQ(q.NextTime(), far2);
  q.PopNext(&when)();
  EXPECT_EQ(when, far2);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(TimingWheelTest, CancelSoleOverflowEventThenInsertLater) {
  // Regression: cancelling the only pending event (an overflow-heap entry)
  // drops the live count to 0, so the next insert takes the queue-empty cache
  // fast path without rescanning. The cancelled tombstone still sits at the
  // overflow-heap root with a smaller (time, seq) key; PopNext must skim it
  // and hand back the live event's callback, not the tombstone's empty one.
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  EventHandle victim =
      q.Schedule(kHorizon + 100, [&fired] { fired.push_back(0); });
  EXPECT_TRUE(q.Cancel(victim));
  EXPECT_TRUE(q.empty());
  q.Post(kHorizon + 200, [&fired] { fired.push_back(1); });
  EXPECT_EQ(q.NextTime(), kHorizon + 200);
  SimTime when = 0;
  q.PopNext(&when)();
  EXPECT_EQ(when, kHorizon + 200);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kTimeNever);
}

TEST(TimingWheelTest, RollsOverAtByteBoundaries) {
  // Events straddling each level boundary: 2^8 (level 0 -> 1), 2^16
  // (level 1 -> 2), 2^24 (level 2 -> 3), and the 2^32 horizon itself.
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  const std::vector<SimTime> times = {255,        256,        257,          65535,
                                      65536,      16777215,   16777216,     kHorizon - 1,
                                      kHorizon,   kHorizon + 5};
  for (size_t i = 0; i < times.size(); ++i) {
    q.Post(times[i], [&fired, i] { fired.push_back(static_cast<int>(i)); });
  }
  SimTime prev = 0;
  SimTime when = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    ASSERT_FALSE(q.empty());
    q.PopNext(&when)();
    EXPECT_EQ(when, times[i]);
    EXPECT_GE(when, prev);
    prev = when;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired.size(), times.size());
}

TEST(TimingWheelTest, RandomizedPopOrderMatchesHeap) {
  // Mirrored operation sequences on both backends: every post, schedule,
  // cancel, and pop is applied to each queue, and every observable (peeked
  // key, popped time, cancel result, size) must agree at every step. Both
  // queues assign internal sequence numbers from identical op streams, so
  // even tie order must match exactly.
  EventQueue heap(QueueKind::kHeap);
  EventQueue wheel(QueueKind::kWheel);
  Rng rng(2024);
  std::vector<std::pair<EventHandle, EventHandle>> handles;
  uint64_t fired_heap = 0;
  uint64_t fired_wheel = 0;
  SimTime now = 0;
  for (int op = 0; op < 4000; ++op) {
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 45) {
      // Mostly near posts, occasionally far enough to hit the overflow heap.
      const SimTime span = rng.NextBelow(20) == 0 ? 6'000'000'000 : Milliseconds(10);
      const SimTime when = now + 1 + static_cast<SimTime>(rng.NextBelow(span));
      heap.Post(when, [&fired_heap] { ++fired_heap; });
      wheel.Post(when, [&fired_wheel] { ++fired_wheel; });
    } else if (roll < 65) {
      // Schedules also occasionally land in the overflow heap, so cancels
      // can leave tombstones there.
      const SimTime span = rng.NextBelow(20) == 0 ? 6'000'000'000 : Milliseconds(50);
      const SimTime when = now + 1 + static_cast<SimTime>(rng.NextBelow(span));
      handles.emplace_back(heap.Schedule(when, [&fired_heap] { ++fired_heap; }),
                           wheel.Schedule(when, [&fired_wheel] { ++fired_wheel; }));
    } else if (roll < 75) {
      if (!handles.empty()) {
        const size_t pick = rng.NextBelow(handles.size());
        auto [h, w] = handles[pick];
        EXPECT_EQ(heap.Cancel(h), wheel.Cancel(w));
        handles.erase(handles.begin() + static_cast<ptrdiff_t>(pick));
      }
    } else if (roll < 77) {
      // Rarely drain both queues to empty: the next inserts then take the
      // empty-queue cache fast path while cancelled overflow tombstones may
      // still sit in the wheel's overflow heap (regression coverage for the
      // cancel-sole-overflow-event bug).
      while (!heap.empty()) {
        ASSERT_FALSE(wheel.empty());
        SimTime hw = 0;
        SimTime ww = 0;
        heap.PopNext(&hw)();
        wheel.PopNext(&ww)();
        ASSERT_EQ(hw, ww) << "op " << op;
        now = hw;
      }
      ASSERT_TRUE(wheel.empty());
    } else if (!heap.empty()) {
      SimTime hw = 0;
      SimTime ww = 0;
      uint64_t hs = 0;
      uint64_t ws = 0;
      ASSERT_TRUE(heap.PeekKey(&hw, &hs));
      ASSERT_TRUE(wheel.PeekKey(&ww, &ws));
      EXPECT_EQ(hw, ww) << "op " << op;
      EXPECT_EQ(hs, ws) << "op " << op;
      heap.PopNext(&hw)();
      wheel.PopNext(&ww)();
      ASSERT_EQ(hw, ww) << "op " << op;
      now = hw;
    }
    ASSERT_EQ(heap.size(), wheel.size()) << "op " << op;
    ASSERT_EQ(heap.NextTime(), wheel.NextTime()) << "op " << op;
  }
  // Drain both completely; the full tails must match one to one.
  while (!heap.empty()) {
    ASSERT_FALSE(wheel.empty());
    SimTime hw = 0;
    SimTime ww = 0;
    heap.PopNext(&hw)();
    wheel.PopNext(&ww)();
    ASSERT_EQ(hw, ww);
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(fired_heap, fired_wheel);
}

TEST(TimingWheelTest, ClearDropsEverything) {
  EventQueue q(QueueKind::kWheel);
  std::vector<int> fired;
  q.Post(10, [&fired] { fired.push_back(0); });
  q.Post(1000, [&fired] { fired.push_back(1); });
  q.Post(6'000'000'000, [&fired] { fired.push_back(2); });  // overflow
  EventHandle h = q.Schedule(500, [&fired] { fired.push_back(3); });
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kTimeNever);
  EXPECT_FALSE(q.Cancel(h));
  EXPECT_TRUE(fired.empty());
  // The queue stays usable after Clear.
  q.Post(7, [&fired] { fired.push_back(4); });
  SimTime when = 0;
  q.PopNext(&when)();
  EXPECT_EQ(when, 7);
  EXPECT_EQ(fired, (std::vector<int>{4}));
}

TEST(QueueKindTest, ParseAndNameRoundTrip) {
  QueueKind kind = QueueKind::kDefault;
  EXPECT_TRUE(ParseQueueKind("heap", &kind));
  EXPECT_EQ(kind, QueueKind::kHeap);
  EXPECT_TRUE(ParseQueueKind("wheel", &kind));
  EXPECT_EQ(kind, QueueKind::kWheel);
  EXPECT_FALSE(ParseQueueKind("ring", &kind));
  EXPECT_EQ(kind, QueueKind::kWheel);  // untouched on failure
  EXPECT_EQ(std::string(QueueKindName(QueueKind::kHeap)), "heap");
  EXPECT_EQ(std::string(QueueKindName(QueueKind::kWheel)), "wheel");
  // The process default never resolves to kDefault, and explicit kinds pass
  // through ResolveQueueKind untouched.
  EXPECT_NE(DefaultQueueKind(), QueueKind::kDefault);
  EXPECT_EQ(ResolveQueueKind(QueueKind::kHeap), QueueKind::kHeap);
  EXPECT_EQ(ResolveQueueKind(QueueKind::kWheel), QueueKind::kWheel);
  EXPECT_EQ(ResolveQueueKind(QueueKind::kDefault), DefaultQueueKind());
}

}  // namespace
}  // namespace schedbattle
