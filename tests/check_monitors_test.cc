// Invariant-monitor validation: every monitor must stay silent on a correct
// scheduler and fire under the matching FaultySched fault. A monitor that
// never fires is indistinguishable from a monitor that checks nothing, so
// each fault scenario here is the existence proof for one monitor.
#include <gtest/gtest.h>

#include "src/check/faulty_sched.h"
#include "src/check/invariant.h"
#include "src/check/monitors.h"
#include "tests/minijson.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

const InvariantMonitor* Find(const MonitorSuite& suite, const std::string& name) {
  for (const auto& m : suite.monitors()) {
    if (m->name() == name) {
      return m.get();
    }
  }
  return nullptr;
}

uint64_t Count(const MonitorSuite& suite, const std::string& name) {
  const InvariantMonitor* m = Find(suite, name);
  return m == nullptr ? 0 : m->violation_count();
}

std::unique_ptr<Scheduler> Faulty(const std::string& sched, FaultKind kind, int arg = 1) {
  return std::make_unique<FaultySched>(MakeScheduler(sched), FaultConfig{kind, arg});
}

ThreadSpec PeriodicSleeper(const std::string& name, int seed, CoreId pin) {
  ThreadSpec spec;
  spec.name = name;
  spec.affinity = CpuMask::Single(pin);
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(-1)
                                 .Compute(Milliseconds(1))
                                 .Sleep(Milliseconds(50))
                                 .EndLoop()
                                 .Build(),
                             Rng(seed));
  return spec;
}

class MonitorTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MonitorTest, CleanRandomWorkloadKeepsEveryMonitorSilent) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(4), MakeScheduler(GetParam()),
                  MachineParams{.seed = 7});
  MonitorSuite suite(&machine);
  Workload workload(&machine);
  Application* app = workload.Add(std::make_unique<ScriptedApp>("mix", 7));
  machine.Boot();
  BuildRandomWorkload(machine, app, 7);
  workload.Run(Seconds(30));
  suite.FinishChecks();
  for (const auto& m : suite.monitors()) {
    EXPECT_EQ(m->violation_count(), 0u) << m->name() << " fired on a correct scheduler";
  }
  EXPECT_EQ(suite.total_violations(), 0u);
  EXPECT_EQ(suite.first_violating(), nullptr);
  EXPECT_TRUE(suite.Report().empty());
}

TEST_P(MonitorTest, DroppedWakeupFiresLostWakeupConservationAndAccounting) {
  // Two hogs keep core 0 busy (and dispatching); the sleeper is pinned to
  // core 1, so after its wakeup is dropped, core 1 idles forever while a
  // compatible runnable thread exists: lost_wakeup and work_conservation
  // both fire, and the machine/scheduler runnable counts disagree.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2),
                  Faulty(GetParam(), FaultKind::kDropWakeup), MachineParams{.seed = 3});
  auto* faulty = static_cast<FaultySched*>(&machine.scheduler());
  MonitorSuite suite(&machine);
  machine.Boot();
  machine.Spawn(Spinner("hog0", 1, 0), nullptr);
  machine.Spawn(Spinner("hog1", 2, 0), nullptr);
  machine.Spawn(PeriodicSleeper("sleeper", 3, 1), nullptr);
  engine.RunUntil(Seconds(6));
  suite.FinishChecks();

  EXPECT_TRUE(faulty->fault_triggered());
  EXPECT_GE(Count(suite, "lost_wakeup"), 1u);
  EXPECT_GE(Count(suite, "work_conservation"), 1u);
  EXPECT_GE(Count(suite, "runqueue_accounting"), 1u);
  ASSERT_NE(suite.first_violating(), nullptr);
  EXPECT_FALSE(suite.Report().empty());
}

TEST(MonitorFaultTest, NoBalanceFiresNumaImbalanceUnderCfs) {
  // 2 NUMA nodes x 4 cores. Node 0 carries two migratable spinners per core,
  // node 1 one per core. With every balancing path suppressed the 2:1
  // per-core ratio (> 1.25 * 1.3) persists past the grace period with
  // threads waiting on node 0 — exactly what CFS's NUMA rule forbids.
  SimEngine engine;
  Machine machine(&engine, CpuTopology(TopologyConfig{2, 1, 4, 1}),
                  Faulty("cfs", FaultKind::kNoBalance), MachineParams{.seed = 5});
  MonitorSuite suite(&machine);
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int c = 0; c < 4; ++c) {
    threads.push_back(machine.Spawn(Spinner("a" + std::to_string(c), 10 + c, c), nullptr));
    threads.push_back(machine.Spawn(Spinner("b" + std::to_string(c), 20 + c, c), nullptr));
  }
  for (int c = 4; c < 8; ++c) {
    threads.push_back(machine.Spawn(Spinner("c" + std::to_string(c), 30 + c, c), nullptr));
  }
  engine.At(Milliseconds(50), [&] {
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(8));
    }
  });
  engine.RunUntil(Seconds(5));
  suite.FinishChecks();

  EXPECT_GE(Count(suite, "numa_imbalance"), 1u);
  // Every core stays busy: the idle-core monitors must not fire.
  EXPECT_EQ(Count(suite, "work_conservation"), 0u);
  EXPECT_EQ(Count(suite, "lost_wakeup"), 0u);
}

TEST(MonitorFaultTest, CorruptVruntimeFiresMonotonicityUnderCfs) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2),
                  Faulty("cfs", FaultKind::kCorruptVruntime), MachineParams{.seed = 5});
  MonitorSuite suite(&machine);
  machine.Boot();
  machine.Spawn(Spinner("hog0", 1), nullptr);
  machine.Spawn(Spinner("hog1", 2), nullptr);
  engine.RunUntil(Milliseconds(500));
  suite.FinishChecks();
  EXPECT_GE(Count(suite, "vruntime_monotonic"), 1u);
}

TEST(MonitorFaultTest, CorruptScoreFiresUleRange) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2),
                  Faulty("ule", FaultKind::kCorruptScore, 200), MachineParams{.seed = 5});
  MonitorSuite suite(&machine);
  machine.Boot();
  machine.Spawn(Spinner("hog", 1, 0), nullptr);
  machine.Spawn(PeriodicSleeper("sleeper", 2, 1), nullptr);
  engine.RunUntil(Milliseconds(500));
  suite.FinishChecks();
  EXPECT_GE(Count(suite, "ule_score_range"), 1u);
}

class MiscountTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MiscountTest, MiscountedLoadFiresAccounting) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2),
                  Faulty(GetParam(), FaultKind::kMiscountLoad, 3), MachineParams{.seed = 5});
  MonitorSuite suite(&machine);
  machine.Boot();
  machine.Spawn(Spinner("hog0", 1), nullptr);
  machine.Spawn(Spinner("hog1", 2), nullptr);
  engine.RunUntil(Milliseconds(200));
  suite.FinishChecks();
  EXPECT_GE(Count(suite, "runqueue_accounting"), 1u);
}

TEST(MonitorReportTest, ViolationsCarryProvenanceAndFormat) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2),
                  Faulty("cfs", FaultKind::kCorruptVruntime), MachineParams{.seed = 5});
  MonitorSuite suite(&machine);
  machine.Boot();
  machine.Spawn(Spinner("hog0", 1), nullptr);
  machine.Spawn(Spinner("hog1", 2), nullptr);
  engine.RunUntil(Milliseconds(500));
  suite.FinishChecks();

  const InvariantMonitor* m = Find(suite, "vruntime_monotonic");
  ASSERT_NE(m, nullptr);
  ASSERT_GE(m->violations().size(), 1u);
  const Violation& v = m->violations().front();
  EXPECT_EQ(v.monitor, "vruntime_monotonic");
  EXPECT_FALSE(v.message.empty());
  // Hogs fork and wake on a live CFS machine, so picks were observed before
  // the first poll-driven violation.
  EXPECT_FALSE(v.recent_picks.empty());
  const std::string line = FormatViolation(v);
  EXPECT_NE(line.find("vruntime_monotonic"), std::string::npos);
  const std::string report = suite.Report();
  EXPECT_NE(report.find("vruntime_monotonic"), std::string::npos);
}

TEST(MonitorStatsTest, SchedstatsJsonCarriesPerMonitorCounts) {
  ExperimentSpec spec = StatsSpec(SchedKind::kCfs, 42);
  spec.check_invariants = true;
  const RunResult result = ExecuteSpec(spec);
  ASSERT_FALSE(result.schedstats_json.empty());
  const minijson::Value root = minijson::Parse(result.schedstats_json);
  ASSERT_TRUE(root.contains("invariant_violations"));
  const minijson::Value& iv = root.at("invariant_violations");
  for (const char* name : {"work_conservation", "lost_wakeup", "vruntime_monotonic",
                           "ule_score_range", "runqueue_accounting", "numa_imbalance"}) {
    ASSERT_TRUE(iv.contains(name)) << name;
    EXPECT_EQ(iv.at(name).as_number(), 0.0) << name;
  }
  EXPECT_EQ(result.violations, 0u);
  EXPECT_TRUE(result.first_violation_monitor.empty());
}

TEST(MonitorStatsTest, StatsJsonOmitsMonitorBlockWhenUnarmed) {
  const RunResult result = ExecuteSpec(StatsSpec(SchedKind::kCfs, 42));
  ASSERT_FALSE(result.schedstats_json.empty());
  const minijson::Value root = minijson::Parse(result.schedstats_json);
  EXPECT_FALSE(root.contains("invariant_violations"));
}

INSTANTIATE_TEST_SUITE_P(Scheds, MonitorTest, ::testing::Values("cfs", "ule"));
INSTANTIATE_TEST_SUITE_P(Scheds, MiscountTest, ::testing::Values("cfs", "ule"));

}  // namespace
}  // namespace schedbattle
