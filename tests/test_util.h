// Shared test helpers: scheduler construction by name, the randomized mixed
// workload used by the property tests, and small workload/spec builders that
// several suites previously duplicated.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/registry.h"
#include "src/cfs/cfs_sched.h"
#include "src/core/spec.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"
#include "src/workload/sync.h"
#include "src/workload/workload.h"

namespace schedbattle {

// Registry id -> freshly built scheduler with default tunables; unknown
// names fall back to ULE (the historical default). Test suites parameterize
// on the string so failures name the scheduler.
inline std::unique_ptr<Scheduler> MakeScheduler(const std::string& name) {
  SchedKind kind = SchedKind::kUle;
  ParseSchedKind(name, &kind);
  return SchedulerRegistry::Instance().Of(kind).make(ExperimentConfig{});
}

// An infinite (or pinned) CPU hog for balance/placement tests.
inline ThreadSpec Spinner(const std::string& name, int seed, CoreId pin = kInvalidCore) {
  ThreadSpec spec;
  spec.name = name;
  if (pin != kInvalidCore) {
    spec.affinity = CpuMask::Single(pin);
  }
  spec.body =
      MakeScriptBody(ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build(),
                     Rng(seed));
  return spec;
}

// How many of `threads` currently sit on each core.
inline std::vector<int> CountsPerCore(const Machine& machine,
                                      const std::vector<SimThread*>& threads) {
  std::vector<int> counts(machine.num_cores(), 0);
  for (SimThread* t : threads) {
    if (t->cpu() != kInvalidCore) {
      counts[t->cpu()]++;
    }
  }
  return counts;
}

// Builds a randomized mixed workload: hogs, sleepers and lock users drawn
// from `seed`. Used by the invariant property tests.
inline void BuildRandomWorkload(Machine& machine, Application* app, uint64_t seed) {
  Rng rng(seed);
  const int hogs = 2 + static_cast<int>(rng.NextBelow(4));
  const int sleepers = 2 + static_cast<int>(rng.NextBelow(6));
  const int lockers = 2 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < hogs; ++i) {
    ThreadSpec spec;
    spec.name = "hog" + std::to_string(i);
    spec.body = MakeScriptBody(
        ScriptBuilder().Compute(Milliseconds(100 + rng.NextBelow(400))).Build(), rng.Split());
    app->SpawnThread(machine, std::move(spec), nullptr);
  }
  for (int i = 0; i < sleepers; ++i) {
    ThreadSpec spec;
    spec.name = "sleeper" + std::to_string(i);
    spec.body = MakeScriptBody(ScriptBuilder()
                                   .Loop(20 + static_cast<int>(rng.NextBelow(30)))
                                   .ComputeFn([](ScriptEnv& env) {
                                     return Microseconds(100 + env.rng.NextBelow(2000));
                                   })
                                   .SleepFn([](ScriptEnv& env) {
                                     return Microseconds(500 + env.rng.NextBelow(5000));
                                   })
                                   .EndLoop()
                                   .Build(),
                               rng.Split());
    app->SpawnThread(machine, std::move(spec), nullptr);
  }
  auto mu = std::make_shared<SimMutex>();
  app->KeepAlive(mu);
  for (int i = 0; i < lockers; ++i) {
    ThreadSpec spec;
    spec.name = "locker" + std::to_string(i);
    spec.body = MakeScriptBody(ScriptBuilder()
                                   .Loop(30)
                                   .Lock(mu.get())
                                   .Compute(Microseconds(200))
                                   .Unlock(mu.get())
                                   .ComputeFn([](ScriptEnv& env) {
                                     return Microseconds(50 + env.rng.NextBelow(500));
                                   })
                                   .EndLoop()
                                   .Build(),
                               rng.Split());
    app->SpawnThread(machine, std::move(spec), nullptr);
  }
}

// A small single-core apache run with schedstats collection, for
// determinism-style byte-identity checks.
inline ExperimentSpec StatsSpec(SchedKind kind, uint64_t seed) {
  ExperimentSpec spec = ExperimentSpec::SingleCore(kind, seed);
  spec.scale = 0.02;
  spec.Named("determinism");
  spec.collect_schedstats = true;
  spec.Add(RegistryApp("apache"));
  return spec;
}

}  // namespace schedbattle

#endif  // TESTS_TEST_UTIL_H_
