// CFS unit tests: weights, PELT, vruntime mechanics, slices, placement,
// group fairness and the preemption rules.
#include <gtest/gtest.h>

#include "src/cfs/cfs_rq.h"
#include "src/cfs/cfs_sched.h"
#include "src/cfs/group.h"
#include "src/cfs/pelt.h"
#include "src/cfs/timeline.h"
#include "src/cfs/weights.h"
#include "src/workload/script.h"
#include "src/workload/workload.h"

namespace schedbattle {
namespace {

TEST(WeightsTest, KernelTableAnchors) {
  EXPECT_EQ(CfsWeightOf(0), 1024u);
  EXPECT_EQ(CfsWeightOf(-20), 88761u);
  EXPECT_EQ(CfsWeightOf(19), 15u);
  EXPECT_EQ(CfsWeightOf(5), 335u);
}

TEST(WeightsTest, EachNiceStepIsRoughly25Percent) {
  for (Nice n = kNiceMin; n < kNiceMax; ++n) {
    const double ratio =
        static_cast<double>(CfsWeightOf(n)) / static_cast<double>(CfsWeightOf(n + 1));
    EXPECT_GT(ratio, 1.18) << "nice " << n;
    EXPECT_LT(ratio, 1.32) << "nice " << n;
  }
}

TEST(WeightsTest, CalcDeltaFair) {
  // Nice-0: vruntime advances at wall speed.
  EXPECT_EQ(CalcDeltaFair(Milliseconds(10), kNice0Load), static_cast<uint64_t>(Milliseconds(10)));
  // Heavier weight: slower vruntime.
  EXPECT_LT(CalcDeltaFair(Milliseconds(10), CfsWeightOf(-5)),
            static_cast<uint64_t>(Milliseconds(10)));
  // Lighter weight: faster vruntime.
  EXPECT_GT(CalcDeltaFair(Milliseconds(10), CfsWeightOf(5)),
            static_cast<uint64_t>(Milliseconds(10)));
}

TEST(PeltTest, DecayHalvesEvery32Periods) {
  EXPECT_EQ(PeltDecayLoad(1024, 0), 1024u);
  EXPECT_EQ(PeltDecayLoad(1024, 32), 511u);  // fixed-point floor
  EXPECT_EQ(PeltDecayLoad(1024, 64), 255u);
  EXPECT_EQ(PeltDecayLoad(1024, 63 * 32 + 1), 0u);
}

TEST(PeltTest, AlwaysRunningConvergesToWeight) {
  PeltAvg avg;
  SimTime now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += Milliseconds(1);
    avg.Update(now, 1024, true, true);
  }
  EXPECT_GT(avg.load_avg, 980u);
  EXPECT_LE(avg.load_avg, 1024u);
  EXPECT_GT(avg.util_avg, 980u);
}

TEST(PeltTest, BlockedLoadDecaysToZero) {
  PeltAvg avg;
  SimTime now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += Milliseconds(1);
    avg.Update(now, 1024, true, true);
  }
  const uint64_t peak = avg.load_avg;
  now += Seconds(2);
  avg.Decay(now);
  EXPECT_LT(avg.load_avg, peak / 16);
}

TEST(PeltTest, HalfDutyGivesRoughlyHalfLoad) {
  PeltAvg avg;
  SimTime now = 0;
  for (int i = 0; i < 4000; ++i) {
    now += Milliseconds(1);
    const bool on = (i / 8) % 2 == 0;  // 8ms on, 8ms off
    avg.Update(now, 1024, on, on);
  }
  EXPECT_GT(avg.load_avg, 350u);
  EXPECT_LT(avg.load_avg, 700u);
}

// ---- cfs_rq entity mechanics ----

class CfsRqTest : public ::testing::Test {
 protected:
  SchedEntity* MakeTask(uint64_t weight = kNice0Load) {
    auto se = std::make_unique<SchedEntity>();
    se->weight = weight;
    se->seq = next_seq_++;
    se->thread = reinterpret_cast<SimThread*>(0x1);  // marks it a task
    entities_.push_back(std::move(se));
    return entities_.back().get();
  }

  CfsTunables tun_;
  CfsRq rq_;
  std::vector<std::unique_ptr<SchedEntity>> entities_;
  uint64_t next_seq_ = 1;
};

TEST_F(CfsRqTest, SchedPeriodMatchesPaper) {
  EXPECT_EQ(CfsSchedPeriod(tun_, 1), Milliseconds(48));
  EXPECT_EQ(CfsSchedPeriod(tun_, 8), Milliseconds(48));
  EXPECT_EQ(CfsSchedPeriod(tun_, 9), 9 * Milliseconds(6));
  EXPECT_EQ(CfsSchedPeriod(tun_, 20), 20 * Milliseconds(6));
}

TEST_F(CfsRqTest, EnqueueDequeueAccounting) {
  SchedEntity* a = MakeTask();
  SchedEntity* b = MakeTask();
  CfsEnqueueEntity(tun_, &rq_, a, false, 0);
  CfsEnqueueEntity(tun_, &rq_, b, false, 0);
  EXPECT_EQ(rq_.nr_running, 2);
  EXPECT_EQ(rq_.load_weight, 2 * kNice0Load);
  CfsDequeueEntity(tun_, &rq_, a, true, false, 0);
  EXPECT_EQ(rq_.nr_running, 1);
  EXPECT_EQ(rq_.load_weight, kNice0Load);
}

TEST_F(CfsRqTest, PickLowestVruntime) {
  SchedEntity* a = MakeTask();
  SchedEntity* b = MakeTask();
  a->vruntime = Milliseconds(10);
  b->vruntime = Milliseconds(5);
  CfsEnqueueEntity(tun_, &rq_, a, false, 0);
  CfsEnqueueEntity(tun_, &rq_, b, false, 0);
  EXPECT_EQ(TimelineFirst(&rq_), b);
}

TEST_F(CfsRqTest, UpdateCurrAdvancesVruntimeByWeight) {
  SchedEntity* heavy = MakeTask(CfsWeightOf(-5));
  SchedEntity* light = MakeTask(CfsWeightOf(5));
  CfsEnqueueEntity(tun_, &rq_, heavy, false, 0);
  CfsEnqueueEntity(tun_, &rq_, light, false, 0);
  CfsSetNextEntity(&rq_, heavy, 0);
  CfsUpdateCurr(&rq_, Milliseconds(10));
  const int64_t heavy_v = heavy->vruntime;
  CfsPutPrevEntity(&rq_, heavy, Milliseconds(10));
  CfsSetNextEntity(&rq_, light, Milliseconds(10));
  light->exec_start = Milliseconds(10);
  CfsUpdateCurr(&rq_, Milliseconds(20));
  EXPECT_LT(heavy_v, light->vruntime) << "light thread's vruntime must advance faster";
}

TEST_F(CfsRqTest, MinVruntimeIsMonotonic) {
  SchedEntity* a = MakeTask();
  CfsEnqueueEntity(tun_, &rq_, a, false, 0);
  CfsSetNextEntity(&rq_, a, 0);
  CfsUpdateCurr(&rq_, Milliseconds(50));
  const int64_t v1 = rq_.min_vruntime;
  EXPECT_GT(v1, 0);
  CfsUpdateCurr(&rq_, Milliseconds(60));
  EXPECT_GE(rq_.min_vruntime, v1);
}

TEST_F(CfsRqTest, SleeperPlacementGetsBoundedCredit) {
  SchedEntity* runner = MakeTask();
  CfsEnqueueEntity(tun_, &rq_, runner, false, 0);
  CfsSetNextEntity(&rq_, runner, 0);
  CfsUpdateCurr(&rq_, Seconds(2));  // min_vruntime is now ~2s

  SchedEntity* sleeper = MakeTask();
  sleeper->vruntime = 0;  // slept for ages
  CfsPlaceEntity(tun_, &rq_, sleeper, /*initial=*/false);
  // Credit capped at latency/2: placed just below min_vruntime, not at 0.
  EXPECT_GE(sleeper->vruntime, rq_.min_vruntime - tun_.sched_latency / 2);
  EXPECT_LT(sleeper->vruntime, rq_.min_vruntime);
}

TEST_F(CfsRqTest, NewTaskStartsWithDebit) {
  SchedEntity* runner = MakeTask();
  CfsEnqueueEntity(tun_, &rq_, runner, false, 0);
  SchedEntity* fresh = MakeTask();
  fresh->vruntime = rq_.min_vruntime;
  CfsPlaceEntity(tun_, &rq_, fresh, /*initial=*/true);
  EXPECT_GT(fresh->vruntime, rq_.min_vruntime);
}

TEST_F(CfsRqTest, TickPreemptionAfterSlice) {
  SchedEntity* a = MakeTask();
  SchedEntity* b = MakeTask();
  CfsEnqueueEntity(tun_, &rq_, a, false, 0);
  CfsEnqueueEntity(tun_, &rq_, b, false, 0);
  CfsSetNextEntity(&rq_, a, 0);
  // Two equal threads: slice = 24ms. At 10ms no preemption, at 30ms yes.
  EXPECT_FALSE(CfsCheckPreemptTick(tun_, &rq_, Milliseconds(10)));
  EXPECT_TRUE(CfsCheckPreemptTick(tun_, &rq_, Milliseconds(30)));
}

TEST_F(CfsRqTest, WakeupPreemptionNeedsGranularity) {
  SchedEntity* curr = MakeTask();
  SchedEntity* woken = MakeTask();
  curr->vruntime = Milliseconds(10);
  woken->vruntime = Milliseconds(10) - Microseconds(500);  // only 0.5ms behind
  EXPECT_FALSE(CfsWakeupPreemptEntity(tun_, curr, woken));
  woken->vruntime = Milliseconds(10) - Milliseconds(2);  // 2ms behind: preempt
  EXPECT_TRUE(CfsWakeupPreemptEntity(tun_, curr, woken));
}

TEST(GroupTest, GroupWeightSplitsByLocalLoad) {
  auto root = MakeTaskGroup(kRootGroup, 4, nullptr, kNice0Load);
  auto tg = MakeTaskGroup(1, 4, root.get(), kNice0Load);
  // Simulate load on two cpus: 3 tasks on cpu0, 1 on cpu1.
  tg->rqs[0]->load_weight = 3 * kNice0Load;
  tg->rqs[1]->load_weight = 1 * kNice0Load;
  tg->load_sum = 4 * kNice0Load;
  EXPECT_EQ(CalcGroupWeight(tg.get(), 0), kNice0Load * 3 / 4);
  EXPECT_EQ(CalcGroupWeight(tg.get(), 1), kNice0Load / 4);
  EXPECT_EQ(CalcGroupWeight(tg.get(), 2), 2u);  // clamped minimum
}

// ---- behavioural fairness tests through the full machine ----

TEST(CfsBehaviorTest, NicenessSkewsCpuShares) {
  SimEngine engine;
  CfsTunables tun;
  tun.group_scheduling = false;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>(tun));
  machine.Boot();
  auto script = ScriptBuilder().Compute(Seconds(30)).Build();
  ThreadSpec fast;
  fast.name = "fast";
  fast.nice = -5;
  fast.body = MakeScriptBody(script, Rng(1));
  ThreadSpec slow;
  slow.name = "slow";
  slow.nice = 5;
  slow.body = MakeScriptBody(script, Rng(2));
  SimThread* tf = machine.Spawn(std::move(fast), nullptr);
  SimThread* ts = machine.Spawn(std::move(slow), nullptr);
  engine.RunUntil(Seconds(10));
  const double rf = ToSeconds(tf->RuntimeAt(engine.now()));
  const double rs = ToSeconds(ts->RuntimeAt(engine.now()));
  // weight(-5)/weight(5) = 3121/335 ~ 9.3.
  EXPECT_GT(rf / rs, 5.0);
  EXPECT_LT(rf / rs, 14.0);
}

TEST(CfsBehaviorTest, GroupFairnessBetweenUnevenApps) {
  // One single-threaded app vs one 10-threaded app: with autogrouping each
  // application gets ~half the core (the paper's Figure 1a situation).
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  Workload workload(&machine);

  auto solo = std::make_unique<ScriptedApp>("solo", 1);
  ScriptedApp::ThreadTemplate t1;
  t1.name = "t";
  t1.script = ScriptBuilder().Compute(Seconds(30)).Build();
  solo->AddThreads(std::move(t1));
  Application* solo_app = workload.Add(std::move(solo));

  auto crowd = std::make_unique<ScriptedApp>("crowd", 2);
  ScriptedApp::ThreadTemplate t10;
  t10.name = "t";
  t10.count = 10;
  t10.script = ScriptBuilder().Compute(Seconds(30)).Build();
  crowd->AddThreads(std::move(t10));
  Application* crowd_app = workload.Add(std::move(crowd));

  workload.Run(Seconds(10));
  SimDuration solo_rt = solo_app->threads().front()->RuntimeAt(engine.now());
  SimDuration crowd_rt = 0;
  for (SimThread* t : crowd_app->threads()) {
    crowd_rt += t->RuntimeAt(engine.now());
  }
  EXPECT_NEAR(ToSeconds(solo_rt), 5.0, 0.8);
  EXPECT_NEAR(ToSeconds(crowd_rt), 5.0, 0.8);
}

TEST(CfsBehaviorTest, WakeupPreemptionCountsPreemptions) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  machine.Boot();
  // A hog and a frequent sleeper: every wake of the sleeper should preempt.
  ThreadSpec hog;
  hog.name = "hog";
  hog.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(5)).Build(), Rng(1));
  machine.Spawn(std::move(hog), nullptr);
  ThreadSpec sleeper;
  sleeper.name = "sleeper";
  sleeper.body = MakeScriptBody(ScriptBuilder()
                                    .Loop(100)
                                    .Sleep(Milliseconds(20))
                                    .Compute(Milliseconds(1))
                                    .EndLoop()
                                    .Build(),
                                Rng(2));
  machine.Spawn(std::move(sleeper), nullptr);
  engine.RunUntil(Seconds(4));
  EXPECT_GT(machine.counters().wakeup_preemptions, 50u);
}

TEST(CfsBehaviorTest, LoadBalanceSpreadsPinnedBurst) {
  // 16 threads start pinned to core 0 of a 4-core flat machine, then are
  // unpinned; CFS should spread them within a few balance intervals.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(4), std::make_unique<CfsScheduler>());
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 16; ++i) {
    ThreadSpec spec;
    spec.name = "pin" + std::to_string(i);
    spec.affinity = CpuMask::Single(0);
    spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(30)).Build(), Rng(i + 1));
    threads.push_back(machine.Spawn(std::move(spec), nullptr));
  }
  engine.At(Seconds(1), [&] {
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(4));
    }
  });
  engine.RunUntil(Seconds(3));
  int counts[4] = {0, 0, 0, 0};
  for (SimThread* t : threads) {
    ASSERT_NE(t->cpu(), kInvalidCore);
    counts[t->cpu()]++;
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_GE(counts[c], 2) << "core " << c << " should have received work";
    EXPECT_LE(counts[c], 6);
  }
}

TEST(CfsBehaviorTest, RespectsAffinityInBalancing) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  machine.Boot();
  // 4 threads pinned to core 1; core 0 idle but forbidden.
  std::vector<SimThread*> threads;
  for (int i = 0; i < 4; ++i) {
    ThreadSpec spec;
    spec.name = "pin";
    spec.affinity = CpuMask::Single(1);
    spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(2)).Build(), Rng(i + 1));
    threads.push_back(machine.Spawn(std::move(spec), nullptr));
  }
  engine.RunUntil(Seconds(1));
  for (SimThread* t : threads) {
    EXPECT_EQ(t->cpu(), 1);
    EXPECT_EQ(t->migrations, 0u);
  }
}

}  // namespace
}  // namespace schedbattle
