// Red-black tree unit and property tests: invariants checked against a
// std::multiset reference model under random insert/erase sequences.
#include "src/cfs/rbtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/sim/rng.h"

namespace schedbattle {
namespace {

struct Item {
  int64_t key = 0;
  uint64_t seq = 0;
  RbNode node;
};

bool ItemLess(const RbNode* a, const RbNode* b) {
  const Item* ia = static_cast<const Item*>(a->owner);
  const Item* ib = static_cast<const Item*>(b->owner);
  if (ia->key != ib->key) {
    return ia->key < ib->key;
  }
  return ia->seq < ib->seq;
}

void Insert(RbTree& tree, Item& item) {
  item.node.owner = &item;
  tree.Insert(&item.node);
}

Item* FirstItem(const RbTree& tree) {
  RbNode* n = tree.First();
  return n == nullptr ? nullptr : static_cast<Item*>(n->owner);
}

TEST(RbTreeTest, EmptyTree) {
  RbTree tree(ItemLess);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.First(), nullptr);
  EXPECT_EQ(tree.Last(), nullptr);
  EXPECT_GE(tree.CheckInvariants(), 0);
}

TEST(RbTreeTest, SingleInsertErase) {
  RbTree tree(ItemLess);
  Item a{42, 1};
  Insert(tree, a);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(FirstItem(tree), &a);
  EXPECT_TRUE(tree.Contains(&a.node));
  EXPECT_GE(tree.CheckInvariants(), 0);
  tree.Erase(&a.node);
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.Contains(&a.node));
}

TEST(RbTreeTest, OrderedIterationAscendingInsert) {
  RbTree tree(ItemLess);
  std::vector<Item> items(100);
  for (int i = 0; i < 100; ++i) {
    items[i].key = i;
    items[i].seq = static_cast<uint64_t>(i);
    Insert(tree, items[i]);
    EXPECT_GE(tree.CheckInvariants(), 0) << "after insert " << i;
  }
  EXPECT_EQ(FirstItem(tree)->key, 0);
  int count = 0;
  int64_t prev = -1;
  for (RbNode* n = tree.First(); n != nullptr; n = tree.Next(n)) {
    const Item* it = static_cast<Item*>(n->owner);
    EXPECT_GT(it->key, prev);
    prev = it->key;
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(RbTreeTest, DescendingInsertKeepsLeftmost) {
  RbTree tree(ItemLess);
  std::vector<Item> items(64);
  for (int i = 0; i < 64; ++i) {
    items[i].key = 63 - i;
    items[i].seq = static_cast<uint64_t>(i);
    Insert(tree, items[i]);
    EXPECT_EQ(FirstItem(tree)->key, items[i].key);
  }
  EXPECT_GE(tree.CheckInvariants(), 0);
}

TEST(RbTreeTest, DuplicateKeysOrderedBySeq) {
  RbTree tree(ItemLess);
  std::vector<Item> items(10);
  for (int i = 0; i < 10; ++i) {
    items[i].key = 7;
    items[i].seq = static_cast<uint64_t>(i);
    Insert(tree, items[i]);
  }
  uint64_t expect = 0;
  for (RbNode* n = tree.First(); n != nullptr; n = tree.Next(n)) {
    EXPECT_EQ(static_cast<Item*>(n->owner)->seq, expect++);
  }
  EXPECT_GE(tree.CheckInvariants(), 0);
}

TEST(RbTreeTest, EraseLeftmostAdvances) {
  RbTree tree(ItemLess);
  std::vector<Item> items(20);
  for (int i = 0; i < 20; ++i) {
    items[i].key = i;
    Insert(tree, items[i]);
  }
  for (int i = 0; i < 20; ++i) {
    Item* first = FirstItem(tree);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->key, i);
    tree.Erase(&first->node);
    EXPECT_GE(tree.CheckInvariants(), 0) << "after erase " << i;
  }
  EXPECT_TRUE(tree.empty());
}

// Property test: random operations mirrored against std::multiset.
class RbTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbTreeRandomTest, MatchesReferenceModel) {
  RbTree tree(ItemLess);
  Rng rng(GetParam());
  std::vector<std::unique_ptr<Item>> pool;
  std::vector<Item*> in_tree;
  std::multiset<int64_t> model;
  uint64_t seq = 0;

  for (int step = 0; step < 4000; ++step) {
    const bool insert = in_tree.empty() || rng.NextBool(0.55);
    if (insert) {
      auto item = std::make_unique<Item>();
      item->key = static_cast<int64_t>(rng.NextBelow(200));
      item->seq = seq++;
      Insert(tree, *item);
      model.insert(item->key);
      in_tree.push_back(item.get());
      pool.push_back(std::move(item));
    } else {
      const size_t idx = rng.NextBelow(in_tree.size());
      Item* victim = in_tree[idx];
      tree.Erase(&victim->node);
      model.erase(model.find(victim->key));
      in_tree[idx] = in_tree.back();
      in_tree.pop_back();
    }
    ASSERT_EQ(tree.size(), model.size());
    if (step % 64 == 0) {
      ASSERT_GE(tree.CheckInvariants(), 0) << "invariant broken at step " << step;
      if (!model.empty()) {
        ASSERT_EQ(FirstItem(tree)->key, *model.begin());
      }
    }
  }
  // Final full in-order comparison.
  std::vector<int64_t> keys;
  for (RbNode* n = tree.First(); n != nullptr; n = tree.Next(n)) {
    keys.push_back(static_cast<Item*>(n->owner)->key);
  }
  std::vector<int64_t> expect(model.begin(), model.end());
  ASSERT_EQ(keys, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace schedbattle
