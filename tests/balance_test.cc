// Load-balancer unit/behavioural tests: CFS hierarchy rules (25% NUMA
// threshold, 32-task cap, hotness), ULE's one-thread donor/receiver rule and
// idle stealing through the topology.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace schedbattle {
namespace {

TEST(CfsBalanceTest, PullsAtMost32PerPass) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 100; ++i) {
    threads.push_back(machine.Spawn(Spinner("s" + std::to_string(i), i + 1, 0), nullptr));
  }
  SimTime unpin_at = Milliseconds(50);
  engine.At(unpin_at, [&] {
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(2));
    }
  });
  // The NOHZ kick arrives with the next balance tick (<=4ms); the *first*
  // pull moves at most 32 threads. Sample finely to catch the first batch.
  int first_batch = 0;
  for (int step = 1; step <= 40 && first_batch == 0; ++step) {
    engine.RunUntil(unpin_at + step * Microseconds(200));
    first_batch = CountsPerCore(machine, threads)[1];
  }
  EXPECT_GE(first_batch, 1);
  EXPECT_LE(first_batch, 32) << "pulls are capped at 32 threads per pass";
  // Eventually both cores carry ~50 each.
  engine.RunUntil(unpin_at + Seconds(1));
  const auto final_counts = CountsPerCore(machine, threads);
  EXPECT_NEAR(final_counts[0], 50, 10);
  EXPECT_NEAR(final_counts[1], 50, 10);
}

TEST(CfsBalanceTest, NumaRuleLeavesSmallImbalance) {
  // 2 nodes x 4 cores; 9 spinners in node 0, 7 in node 1: per-core averages
  // 2.25 vs 1.75 (ratio 1.28 > 1.25 borderline). 10 vs 6 (ratio 1.67) must
  // be balanced down, 9 vs 7 may persist. Check the invariant the paper
  // states: a small cross-node imbalance is tolerated forever.
  TopologyConfig tc;
  tc.numa_nodes = 2;
  tc.llcs_per_node = 1;
  tc.cores_per_llc = 4;
  tc.smt_per_core = 1;
  SimEngine engine;
  Machine machine(&engine, CpuTopology(tc), std::make_unique<CfsScheduler>());
  machine.Boot();
  std::vector<SimThread*> threads;
  // 9 pinned to node 0 cores, 7 to node 1, then unpin.
  for (int i = 0; i < 9; ++i) {
    threads.push_back(machine.Spawn(Spinner("a" + std::to_string(i), i + 1, i % 4), nullptr));
  }
  for (int i = 0; i < 7; ++i) {
    threads.push_back(
        machine.Spawn(Spinner("b" + std::to_string(i), 100 + i, 4 + i % 4), nullptr));
  }
  engine.At(Milliseconds(50), [&] {
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(8));
    }
  });
  engine.RunUntil(Seconds(5));
  const auto counts = CountsPerCore(machine, threads);
  int node0 = 0, node1 = 0;
  for (int c = 0; c < 4; ++c) {
    node0 += counts[c];
  }
  for (int c = 4; c < 8; ++c) {
    node1 += counts[c];
  }
  // 9/7 (ratio 1.28) or 8/8: both acceptable; 10/6 or worse is not.
  EXPECT_LE(std::abs(node0 - node1), 2) << node0 << " vs " << node1;
}

TEST(UleBalanceTest, PeriodicBalancerMovesOneThreadPerInvocation) {
  SimEngine engine;
  UleTunables tun;
  tun.balance_min = Milliseconds(100);
  tun.balance_max = Milliseconds(100);  // deterministic period
  tun.steal_enabled = false;            // isolate the periodic balancer
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<UleScheduler>(tun));
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 9; ++i) {
    threads.push_back(machine.Spawn(Spinner("s" + std::to_string(i), i + 1, 0), nullptr));
  }
  engine.At(Milliseconds(10), [&] {
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(2));
    }
  });
  // One migration per ~100ms: after 250ms at most 2-3 moved; after 900ms,
  // balanced at 5/4 (4 moves).
  engine.RunUntil(Milliseconds(260));
  EXPECT_LE(machine.counters().migrations, 3u);
  engine.RunUntil(Milliseconds(1500));
  const auto counts = CountsPerCore(machine, threads);
  EXPECT_LE(std::abs(counts[0] - counts[1]), 1);
  EXPECT_LE(machine.counters().migrations, 6u);
}

TEST(UleBalanceTest, IdleStealClimbsTopology) {
  // 2 nodes x 2 cores. Work pinned to core 0 (node 0): an idle core in node
  // 1 must eventually steal across the node boundary.
  TopologyConfig tc;
  tc.numa_nodes = 2;
  tc.llcs_per_node = 1;
  tc.cores_per_llc = 2;
  tc.smt_per_core = 1;
  SimEngine engine;
  UleTunables tun;
  tun.balance_enabled = false;  // isolate idle stealing
  Machine machine(&engine, CpuTopology(tc), std::make_unique<UleScheduler>(tun));
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 8; ++i) {
    threads.push_back(machine.Spawn(Spinner("s" + std::to_string(i), i + 1, 0), nullptr));
  }
  engine.At(Milliseconds(10), [&] {
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(4));
    }
  });
  engine.RunUntil(Milliseconds(100));
  const auto counts = CountsPerCore(machine, threads);
  // Every core (including the remote node's) stole exactly one.
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[0], 5);
}

TEST(UleBalanceTest, BalancerRespectsAffinity) {
  SimEngine engine;
  UleTunables tun;
  tun.balance_min = Milliseconds(50);
  tun.balance_max = Milliseconds(50);
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<UleScheduler>(tun));
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 6; ++i) {
    threads.push_back(machine.Spawn(Spinner("pin" + std::to_string(i), i + 1, 0), nullptr));
  }
  engine.RunUntil(Seconds(1));
  for (SimThread* t : threads) {
    EXPECT_EQ(t->cpu(), 0) << "pinned threads must never be balanced away";
  }
  EXPECT_EQ(machine.counters().migrations, 0u);
}

TEST(CfsBalanceTest, BalancerRespectsAffinity) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 6; ++i) {
    threads.push_back(machine.Spawn(Spinner("pin" + std::to_string(i), i + 1, 0), nullptr));
  }
  engine.RunUntil(Seconds(1));
  for (SimThread* t : threads) {
    EXPECT_EQ(t->cpu(), 0);
  }
  EXPECT_EQ(machine.counters().migrations, 0u);
}

}  // namespace
}  // namespace schedbattle
