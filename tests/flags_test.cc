// Checked flag parsing: garbage must be rejected with a useful error, never
// silently coerced to 0 (the old atof behaviour).
#include "src/core/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace schedbattle {
namespace {

TEST(ParseTest, DoubleAcceptsValidRejectsGarbage) {
  double d = -1;
  EXPECT_TRUE(ParseDouble("0.25", &d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(ParseDouble("-3e2", &d));
  EXPECT_DOUBLE_EQ(d, -300.0);
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));
  EXPECT_FALSE(ParseDouble("nan", &d));
  EXPECT_FALSE(ParseDouble("inf", &d));
}

TEST(ParseTest, IntRejectsTrailingJunkAndOverflow) {
  int i = -1;
  EXPECT_TRUE(ParseInt("42", &i));
  EXPECT_EQ(i, 42);
  EXPECT_TRUE(ParseInt("-7", &i));
  EXPECT_EQ(i, -7);
  EXPECT_FALSE(ParseInt("42abc", &i));
  EXPECT_FALSE(ParseInt("4.5", &i));
  EXPECT_FALSE(ParseInt("99999999999999999999", &i));
}

TEST(ParseTest, Uint64RejectsNegatives) {
  uint64_t u = 1;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u));
  EXPECT_EQ(u, 18446744073709551615ull);
  EXPECT_FALSE(ParseUint64("-1", &u));
  EXPECT_FALSE(ParseUint64("abc", &u));
}

TEST(FlagSetTest, ParsesTypedFlagsAndBooleans) {
  double scale = 1.0;
  int jobs = 0;
  uint64_t seed = 0;
  std::string out;
  std::vector<std::string> apps;
  bool noise = false;
  FlagSet flags;
  flags.Double("scale", &scale, "")
      .Int("jobs", &jobs, "")
      .Uint64("seed", &seed, "")
      .String("out", &out, "")
      .StringList("app", &apps, "")
      .Bool("noise", &noise, "");
  const char* argv[] = {"prog",        "--scale=0.5", "--jobs=8",  "--seed=99",
                        "--out=x.csv", "--app=gzip",  "--app=MG",  "--noise"};
  std::string error;
  ASSERT_TRUE(flags.Parse(8, const_cast<char**>(argv), 1, &error)) << error;
  EXPECT_DOUBLE_EQ(scale, 0.5);
  EXPECT_EQ(jobs, 8);
  EXPECT_EQ(seed, 99u);
  EXPECT_EQ(out, "x.csv");
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0], "gzip");
  EXPECT_EQ(apps[1], "MG");
  EXPECT_TRUE(noise);
}

TEST(FlagSetTest, RejectsGarbageValueWithFlagNameInError) {
  double scale = 1.0;
  FlagSet flags;
  flags.Double("scale", &scale, "");
  const char* argv[] = {"prog", "--scale=abc"};
  std::string error;
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv), 1, &error));
  EXPECT_NE(error.find("--scale"), std::string::npos) << error;
  EXPECT_DOUBLE_EQ(scale, 1.0) << "failed parse must not write through";
}

TEST(FlagSetTest, RejectsUnknownFlag) {
  double scale = 1.0;
  FlagSet flags;
  flags.Double("scale", &scale, "");
  const char* argv[] = {"prog", "--bogus=1"};
  std::string error;
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv), 1, &error));
  EXPECT_NE(error.find("--bogus"), std::string::npos) << error;
}

TEST(FlagSetTest, RejectsMissingValueForTypedFlag) {
  int jobs = 0;
  FlagSet flags;
  flags.Int("jobs", &jobs, "");
  const char* argv[] = {"prog", "--jobs"};
  std::string error;
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv), 1, &error));
  EXPECT_NE(error.find("--jobs"), std::string::npos) << error;
}

TEST(FlagSetTest, HelpListsFlagsInRegistrationOrder) {
  double scale = 1.0;
  bool noise = false;
  FlagSet flags;
  flags.Double("scale", &scale, "workload scale").Bool("noise", &noise, "background noise");
  const std::string help = flags.Help();
  const size_t scale_pos = help.find("--scale");
  const size_t noise_pos = help.find("--noise");
  ASSERT_NE(scale_pos, std::string::npos);
  ASSERT_NE(noise_pos, std::string::npos);
  EXPECT_LT(scale_pos, noise_pos);
  EXPECT_NE(help.find("workload scale"), std::string::npos);
}

}  // namespace
}  // namespace schedbattle
