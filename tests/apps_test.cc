// Application-model smoke tests: every registry entry must launch, run to
// completion under both schedulers at a tiny scale, and produce a sensible
// metric. Plus structural checks for the specific models.
#include <gtest/gtest.h>

#include "src/apps/apache.h"
#include "src/apps/fibo.h"
#include "src/apps/hackbench.h"
#include "src/apps/phoronix.h"
#include "src/apps/registry.h"
#include "src/apps/sysbench.h"
#include "src/core/runner.h"

namespace schedbattle {
namespace {

TEST(RegistryTest, SuiteHasTheFigureApps) {
  const auto& suite = BenchmarkSuite();
  EXPECT_GE(suite.size(), 40u);
  for (const char* name : {"build-apache", "c-ray", "scimark2-(2)", "apache", "MG", "sysbench",
                           "rocksdb", "ferret", "x264"}) {
    EXPECT_NE(FindApp(name), nullptr) << name;
  }
  EXPECT_EQ(FindApp("not-an-app"), nullptr);
}

struct SmokeParam {
  std::string app;
  std::string sched;
};

class AppSmokeTest : public ::testing::TestWithParam<SmokeParam> {};

TEST_P(AppSmokeTest, RunsToCompletionOnFourCores) {
  const SmokeParam& p = GetParam();
  const AppEntry* entry = FindApp(p.app);
  ASSERT_NE(entry, nullptr);
  ExperimentConfig cfg;
  cfg.sched = p.sched == "cfs" ? SchedKind::kCfs : SchedKind::kUle;
  cfg.topology = CpuTopology::Flat(4).config();
  cfg.horizon = Seconds(400);
  ExperimentRun run(cfg);
  Application* app = run.Add(entry->make(4, /*seed=*/42, /*scale=*/0.02), 0);
  const SimTime finish = run.Run();
  EXPECT_TRUE(app->finished()) << p.app << " did not finish";
  EXPECT_LT(finish, cfg.horizon) << p.app << " hit the horizon";
  EXPECT_GT(run.MetricFor(*app, entry->metric), 0.0) << p.app;
}

std::vector<SmokeParam> AllSmokeParams() {
  std::vector<SmokeParam> params;
  for (const AppEntry& e : BenchmarkSuite()) {
    params.push_back({e.name, "cfs"});
    params.push_back({e.name, "ule"});
  }
  return params;
}

std::string SmokeName(const ::testing::TestParamInfo<SmokeParam>& info) {
  std::string s = info.param.app + "_" + info.param.sched;
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Suite, AppSmokeTest, ::testing::ValuesIn(AllSmokeParams()), SmokeName);

TEST(AppModelTest, FiboNeverSleeps) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(SchedKind::kCfs, 1);
  ExperimentRun run(cfg);
  FiboParams p;
  p.total_work = Milliseconds(500);
  Application* fibo = run.Add(MakeFibo(p), 0);
  run.Run();
  ASSERT_EQ(fibo->threads().size(), 1u);
  EXPECT_EQ(fibo->threads().front()->total_sleep, 0);
  EXPECT_NEAR(ToSeconds(fibo->threads().front()->total_runtime), 0.5, 0.01);
}

TEST(AppModelTest, SysbenchSpawnsMasterAndWorkers) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(SchedKind::kUle, 1);
  ExperimentRun run(cfg);
  SysbenchParams p;
  p.workers = 16;
  p.total_transactions = 500;
  Application* sys = run.Add(MakeSysbench(p), 0);
  run.Run();
  EXPECT_EQ(sys->threads().size(), 17u);  // master + 16 workers
  EXPECT_EQ(sys->stats().ops, 500u);
  EXPECT_GT(sys->stats().latency.count(), 0u);
}

TEST(AppModelTest, SysbenchWorkersAreSleepHeavy) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(SchedKind::kUle, 1);
  ExperimentRun run(cfg);
  SysbenchParams p;
  p.workers = 8;
  p.total_transactions = 2000;
  Application* sys = run.Add(MakeSysbench(p), 0);
  run.Run();
  for (SimThread* t : sys->threads()) {
    if (t->name().find("worker") != std::string::npos && t->total_runtime > Milliseconds(50)) {
      EXPECT_GT(t->total_sleep, t->total_runtime)
          << t->name() << " must sleep more than it runs (interactive under ULE)";
    }
  }
}

TEST(AppModelTest, ApacheFinishesWhenAbExits) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(SchedKind::kCfs, 1);
  ExperimentRun run(cfg);
  ApacheParams p;
  p.total_requests = 2000;
  p.httpd_threads = 10;
  p.window = 20;
  Application* apache = run.Add(MakeApache(p), 0);
  const SimTime finish = run.Run();
  EXPECT_TRUE(apache->finished());
  EXPECT_LT(finish, cfg.horizon);
  EXPECT_EQ(apache->stats().ops, 2000u);
  // httpd workers are parked, not dead.
  int alive = 0;
  for (SimThread* t : apache->threads()) {
    if (t->state() == ThreadState::kBlocked) {
      ++alive;
    }
  }
  EXPECT_EQ(alive, 10);
}

TEST(AppModelTest, HackbenchDeliversAllMessages) {
  ExperimentConfig cfg;
  cfg.sched = SchedKind::kUle;
  cfg.topology = CpuTopology::Flat(4).config();
  ExperimentRun run(cfg);
  HackbenchParams p;
  p.groups = 2;
  p.fan = 4;
  p.messages = 5;
  Application* hb = run.Add(MakeHackbench(p), 0);
  const SimTime finish = run.Run();
  EXPECT_TRUE(hb->finished());
  EXPECT_LT(finish, cfg.horizon);
  EXPECT_EQ(hb->threads().size(), 2u * (4 + 4));
}

TEST(AppModelTest, CrayCascadeStartsAllThreads) {
  ExperimentConfig cfg;
  cfg.sched = SchedKind::kCfs;
  cfg.topology = CpuTopology::Flat(4).config();
  ExperimentRun run(cfg);
  CrayParams p;
  p.threads = 16;
  p.work_per_thread = Milliseconds(20);
  Application* cray = run.Add(MakeCray(p), 0);
  run.Run();
  EXPECT_TRUE(cray->finished());
  for (SimThread* t : cray->threads()) {
    EXPECT_GE(t->first_dispatch, 0) << t->name() << " never ran";
  }
}

}  // namespace
}  // namespace schedbattle
