// Application/Workload layer tests: lifecycle, completion tracking, group
// assignment, background apps, stats.
#include "src/workload/workload.h"

#include <gtest/gtest.h>

#include "src/cfs/cfs_sched.h"
#include "src/ule/ule_sched.h"

namespace schedbattle {
namespace {

std::unique_ptr<ScriptedApp> MakeSimpleApp(const std::string& name, int threads,
                                           SimDuration work, uint64_t seed) {
  auto app = std::make_unique<ScriptedApp>(name, seed);
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "w";
  tmpl.count = threads;
  tmpl.script = ScriptBuilder().Compute(work).Build();
  app->AddThreads(std::move(tmpl));
  return app;
}

TEST(WorkloadTest, RunsToCompletionAndStopsEarly) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  Workload workload(&machine);
  Application* app = workload.Add(MakeSimpleApp("a", 4, Milliseconds(50), 1));
  const SimTime finish = workload.Run(Seconds(100));
  EXPECT_TRUE(workload.AllFinished());
  EXPECT_LT(finish, Seconds(1)) << "must stop at completion, not the horizon";
  EXPECT_EQ(app->stats().finished, finish);
  EXPECT_EQ(app->live_threads(), 0);
}

TEST(WorkloadTest, AppsGetDistinctGroups) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  Workload workload(&machine);
  Application* a = workload.Add(MakeSimpleApp("a", 1, Milliseconds(1), 1));
  Application* b = workload.Add(MakeSimpleApp("b", 1, Milliseconds(1), 2));
  EXPECT_NE(a->group(), b->group());
  EXPECT_NE(a->group(), kRootGroup);
  workload.Run(Seconds(1));
  for (SimThread* t : a->threads()) {
    EXPECT_EQ(t->group(), a->group());
  }
}

TEST(WorkloadTest, StaggeredStartTimes) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  Workload workload(&machine);
  Application* early = workload.Add(MakeSimpleApp("early", 1, Milliseconds(10), 1), 0);
  Application* late = workload.Add(MakeSimpleApp("late", 1, Milliseconds(10), 2), Seconds(2));
  workload.Run(Seconds(10));
  EXPECT_LT(early->stats().started, Seconds(1));
  EXPECT_GE(late->stats().started, Seconds(2));
  EXPECT_GE(late->stats().finished, Seconds(2));
}

TEST(WorkloadTest, BackgroundAppsDoNotBlockCompletion) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  Workload workload(&machine);
  auto noise = std::make_unique<ScriptedApp>("noise", 3);
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "n";
  tmpl.script = ScriptBuilder()
                    .Loop(-1)
                    .Sleep(Milliseconds(10))
                    .Compute(Microseconds(100))
                    .EndLoop()
                    .Build();
  noise->AddThreads(std::move(tmpl));
  noise->set_background(true);
  workload.Add(std::move(noise));
  workload.Add(MakeSimpleApp("fg", 1, Milliseconds(50), 1));
  const SimTime finish = workload.Run(Seconds(60));
  EXPECT_LT(finish, Seconds(1)) << "background app must not hold the run open";
}

TEST(WorkloadTest, OpsPerSecond) {
  AppStats stats;
  stats.started = Seconds(1);
  stats.RecordOp(Seconds(1), Seconds(1) + Milliseconds(10));
  stats.RecordOp(Seconds(2), Seconds(2) + Milliseconds(20));
  stats.finished = Seconds(3);
  EXPECT_DOUBLE_EQ(stats.OpsPerSecond(Seconds(99)), 1.0);  // 2 ops over 2s
  EXPECT_EQ(stats.latency.count(), 2u);
  EXPECT_EQ(stats.latency.max(), Milliseconds(20));
}

TEST(WorkloadTest, DynamicSpawnTrackedForCompletion) {
  // An app whose master forks workers mid-run: completion requires all of
  // them to exit.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<UleScheduler>());
  Workload workload(&machine);

  class ForkingApp : public Application {
   public:
    ForkingApp() : Application("forker") {}
    void Launch(Machine& machine) override {
      Application* self = this;
      auto master = ScriptBuilder()
                        .Compute(Milliseconds(5))
                        .Call([self](ScriptEnv& env) {
                          for (int i = 0; i < 3; ++i) {
                            ThreadSpec spec;
                            spec.name = "child" + std::to_string(i);
                            spec.body = MakeScriptBody(
                                ScriptBuilder().Compute(Milliseconds(20)).Build(), Rng(i + 10));
                            self->SpawnThread(env.ctx.machine(), std::move(spec),
                                              &env.ctx.thread());
                          }
                        })
                        .Build();
      ThreadSpec spec;
      spec.name = "master";
      spec.body = MakeScriptBody(master, Rng(1));
      SpawnThread(machine, std::move(spec), nullptr);
      MarkLaunched();
    }
  };
  Application* app = workload.Add(std::make_unique<ForkingApp>());
  workload.Run(Seconds(10));
  EXPECT_TRUE(app->finished());
  EXPECT_EQ(app->threads().size(), 4u);
  EXPECT_GT(machine.counters().forks, 3u);
}

TEST(WorkloadTest, DeadlockedAppHitsHorizon) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  Workload workload(&machine);
  auto app = std::make_unique<ScriptedApp>("stuck", 1);
  auto sem = std::make_shared<SimSemaphore>(0);  // never posted
  app->KeepAlive(sem);
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "w";
  tmpl.script = ScriptBuilder().SemWait(sem.get()).Build();
  app->AddThreads(std::move(tmpl));
  Application* stuck = workload.Add(std::move(app));
  const SimTime finish = workload.Run(Seconds(3));
  EXPECT_FALSE(stuck->finished());
  EXPECT_EQ(finish, Seconds(3));
  EXPECT_EQ(stuck->threads().front()->state(), ThreadState::kBlocked);
}

}  // namespace
}  // namespace schedbattle
