// Nested cgroup fairness (paper Section 2.1: "systemd automatically
// configures cgroups to ensure fairness between different users, and then
// fairness between the applications of a given user").
#include <gtest/gtest.h>

#include "src/cfs/cfs_sched.h"
#include "src/ule/ule_sched.h"
#include "src/workload/workload.h"

namespace schedbattle {
namespace {

std::unique_ptr<ScriptedApp> HogApp(const std::string& name, int threads, uint64_t seed) {
  auto app = std::make_unique<ScriptedApp>(name, seed);
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "hog";
  tmpl.count = threads;
  tmpl.script = ScriptBuilder().Compute(Seconds(60)).Build();
  app->AddThreads(std::move(tmpl));
  return app;
}

SimDuration AppRuntime(const Application* app, SimTime now) {
  SimDuration total = 0;
  for (SimThread* t : app->threads()) {
    total += t->RuntimeAt(now);
  }
  return total;
}

TEST(NestedGroupsTest, FairBetweenUsersThenBetweenApps) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  Workload workload(&machine);

  // User A: one single-threaded app. User B: two apps (1 and 8 threads).
  const GroupId user_a = workload.MakeUserGroup();
  const GroupId user_b = workload.MakeUserGroup();
  Application* a1 = workload.Add(HogApp("a1", 1, 1), 0, user_a);
  Application* b1 = workload.Add(HogApp("b1", 1, 2), 0, user_b);
  Application* b2 = workload.Add(HogApp("b2", 8, 3), 0, user_b);

  workload.Run(Seconds(10));
  const SimTime now = engine.now();
  const double ra1 = ToSeconds(AppRuntime(a1, now));
  const double rb1 = ToSeconds(AppRuntime(b1, now));
  const double rb2 = ToSeconds(AppRuntime(b2, now));

  // User level: A gets ~5s, B gets ~5s despite having 9 threads.
  EXPECT_NEAR(ra1, 5.0, 0.7);
  EXPECT_NEAR(rb1 + rb2, 5.0, 0.7);
  // App level inside B: b1 and b2 split B's half evenly.
  EXPECT_NEAR(rb1, 2.5, 0.6);
  EXPECT_NEAR(rb2, 2.5, 0.6);
}

TEST(NestedGroupsTest, FlatGroupsGivePerAppShares) {
  // Without user nesting, the same three apps share 1/3 each.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  Workload workload(&machine);
  Application* a1 = workload.Add(HogApp("a1", 1, 1), 0);
  Application* b1 = workload.Add(HogApp("b1", 1, 2), 0);
  Application* b2 = workload.Add(HogApp("b2", 8, 3), 0);
  workload.Run(Seconds(9));
  const SimTime now = engine.now();
  EXPECT_NEAR(ToSeconds(AppRuntime(a1, now)), 3.0, 0.5);
  EXPECT_NEAR(ToSeconds(AppRuntime(b1, now)), 3.0, 0.5);
  EXPECT_NEAR(ToSeconds(AppRuntime(b2, now)), 3.0, 0.5);
}

TEST(NestedGroupsTest, UleIgnoresGroupsEntirely) {
  // ULE "considers each thread as an independent entity": with 1 + 1 + 8
  // equal hogs, shares are per-thread (1/10 each), nesting or not.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  Workload workload(&machine);
  const GroupId user_a = workload.MakeUserGroup();
  Application* a1 = workload.Add(HogApp("a1", 1, 1), 0, user_a);
  Application* b2 = workload.Add(HogApp("b2", 8, 3), 0);
  workload.Run(Seconds(9));
  const SimTime now = engine.now();
  EXPECT_NEAR(ToSeconds(AppRuntime(a1, now)), 1.0, 0.4);
  EXPECT_NEAR(ToSeconds(AppRuntime(b2, now)), 8.0, 0.6);
}

TEST(NestedGroupsTest, DeepNestingThreeLevels) {
  // users -> projects -> apps: three levels of hierarchy under the root.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  Workload workload(&machine);
  const GroupId user = workload.MakeUserGroup();
  const GroupId project = workload.MakeUserGroup();
  machine.scheduler().DeclareGroup(project, user);
  Application* deep = workload.Add(HogApp("deep", 4, 1), 0, project);
  Application* shallow = workload.Add(HogApp("shallow", 1, 2), 0);
  workload.Run(Seconds(8));
  const SimTime now = engine.now();
  // Top level: user-vs-shallow 50/50 regardless of depth below.
  EXPECT_NEAR(ToSeconds(AppRuntime(deep, now)), 4.0, 0.6);
  EXPECT_NEAR(ToSeconds(AppRuntime(shallow, now)), 4.0, 0.6);
}

}  // namespace
}  // namespace schedbattle
