// SchedStats registry tests: wakeup-to-dispatch latency on hand-computed
// scripts, runqueue-depth timeseries on a known scenario, decision counters,
// and the JSON snapshot round-tripping through a real parser.
#include "src/metrics/schedstats.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/cfs/cfs_sched.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"
#include "tests/minijson.h"

namespace schedbattle {
namespace {

std::unique_ptr<Scheduler> MakeSched(const std::string& kind) {
  if (kind == "cfs") {
    return std::make_unique<CfsScheduler>();
  }
  return std::make_unique<UleScheduler>();
}

TEST(SchedStatsTest, ZeroWakeupLatencyOnIdleCore) {
  // A thread pinned to an otherwise-idle core is dispatched at the simulated
  // instant of every wakeup: all latencies are exactly zero.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  machine.Boot();
  SchedStats stats(&machine);

  constexpr int kSleeps = 20;
  ThreadSpec spec;
  spec.name = "lonely";
  spec.affinity = CpuMask::Single(1);
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(kSleeps)
                                 .Compute(Microseconds(200))
                                 .Sleep(Milliseconds(1))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  SimThread* t = machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Seconds(1));

  const LatencyHistogram& h = stats.wakeup_latency();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kSleeps));
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(99), 0);
  const LatencyHistogram* per_thread = stats.wakeup_latency_of(t->id());
  ASSERT_NE(per_thread, nullptr);
  EXPECT_EQ(per_thread->count(), h.count());
  // Fork-to-first-dispatch is also instantaneous on an idle core.
  EXPECT_EQ(stats.fork_latency().count(), 1u);
  EXPECT_EQ(stats.fork_latency().max(), 0);
}

TEST(SchedStatsTest, ConvoyWakeupLatencyMatchesHandComputed) {
  // Single core under ULE (no wakeup preemption): a sleeper wakes at t=5ms
  // behind a 10ms compute that started at t=1ms, so it waits until the
  // computer exits at ~11ms — a wakeup latency of ~6ms (plus the context
  // switch and fork-path overheads, well under 100us).
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  SchedStats stats(&machine);

  ThreadSpec sleeper;
  sleeper.name = "sleeper";
  sleeper.body = MakeScriptBody(
      ScriptBuilder().Sleep(Milliseconds(5)).Compute(Milliseconds(1)).Build(), Rng(1));
  SimThread* s = machine.Spawn(std::move(sleeper), nullptr);

  engine.At(Milliseconds(1), [&machine] {
    ThreadSpec computer;
    computer.name = "computer";
    computer.body =
        MakeScriptBody(ScriptBuilder().Compute(Milliseconds(10)).Build(), Rng(2));
    machine.Spawn(std::move(computer), nullptr);
  });
  engine.RunUntil(Seconds(1));

  const LatencyHistogram* h = stats.wakeup_latency_of(s->id());
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->count(), 1u);
  EXPECT_GE(h->max(), Milliseconds(6));
  EXPECT_LE(h->max(), Milliseconds(6) + Microseconds(100));
}

class SchedStatsParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedStatsParamTest, RunqueueDepthSeriesTracksPinnedSpinners) {
  // Three infinite spinners pinned to core 0: once started, core 0's
  // runnable count is exactly 3 at every sample and core 1's is 0.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), MakeSched(GetParam()));
  machine.Boot();
  SchedStats::Options opts;
  opts.rq_sample_period = Milliseconds(10);
  SchedStats stats(&machine, opts);

  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "spin" + std::to_string(i);
    spec.affinity = CpuMask::Single(0);
    spec.body =
        MakeScriptBody(ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build(),
                       Rng(i + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  engine.RunUntil(Seconds(1));

  const TimeSeries& core0 = stats.runqueue_depth(0);
  const TimeSeries& core1 = stats.runqueue_depth(1);
  ASSERT_GE(core0.points().size(), 90u);  // ~100 samples in 1s
  EXPECT_EQ(core0.points().size(), core1.points().size());
  for (const TimePoint& p : core0.points()) {
    EXPECT_EQ(p.value, 3.0) << "at t=" << p.t;
  }
  for (const TimePoint& p : core1.points()) {
    EXPECT_EQ(p.value, 0.0) << "at t=" << p.t;
  }
  // Samples are strictly ordered and evenly spaced.
  for (size_t i = 1; i < core0.points().size(); ++i) {
    EXPECT_EQ(core0.points()[i].t - core0.points()[i - 1].t, Milliseconds(10));
  }
}

TEST_P(SchedStatsParamTest, JsonSnapshotRoundTrips) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(4), MakeSched(GetParam()));
  machine.Boot();
  SchedStats stats(&machine);

  for (int i = 0; i < 6; ++i) {
    ThreadSpec spec;
    spec.name = "w" + std::to_string(i);
    spec.body = MakeScriptBody(ScriptBuilder()
                                   .Loop(20)
                                   .Compute(Microseconds(300))
                                   .Sleep(Microseconds(700))
                                   .EndLoop()
                                   .Build(),
                               Rng(i + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  engine.RunUntil(Seconds(2));

  const std::string json = stats.ToJson();
  const minijson::Value root = minijson::Parse(json);  // throws if malformed

  EXPECT_EQ(root.at("scheduler").as_string(), GetParam());
  EXPECT_EQ(root.at("num_cores").as_number(), 4.0);

  // Latency histograms survive the round trip numerically.
  const LatencyHistogram& h = stats.wakeup_latency();
  const minijson::Value& wl = root.at("wakeup_latency");
  EXPECT_EQ(wl.at("count").as_number(), static_cast<double>(h.count()));
  ASSERT_GT(h.count(), 0u);
  EXPECT_EQ(wl.at("p50_ns").as_number(), static_cast<double>(h.Percentile(50)));
  EXPECT_EQ(wl.at("p99_ns").as_number(), static_cast<double>(h.Percentile(99)));
  EXPECT_EQ(wl.at("max_ns").as_number(), static_cast<double>(h.max()));

  // Decision counters match the in-memory registry.
  const DecisionCounters& d = stats.decisions();
  const minijson::Value& dec = root.at("decisions");
  EXPECT_EQ(dec.at("pickcpu_total").as_number(), static_cast<double>(d.pickcpu_total));
  EXPECT_EQ(dec.at("balance_passes").as_number(), static_cast<double>(d.balance_passes));
  EXPECT_EQ(dec.at("preempt_checks").as_number(), static_cast<double>(d.preempt_checks));
  uint64_t by_reason_sum = 0;
  for (const auto& [name, count] : dec.at("pickcpu_by_reason").as_object()) {
    by_reason_sum += static_cast<uint64_t>(count.as_number());
  }
  EXPECT_EQ(by_reason_sum, d.pickcpu_total);

  // One runqueue-depth series per core, entries are [t, depth] pairs.
  const auto& rq = root.at("runqueue_depth").as_object();
  EXPECT_EQ(rq.size(), 4u);
  const auto& core0 = root.at("runqueue_depth").at("core0").as_array();
  ASSERT_FALSE(core0.empty());
  EXPECT_EQ(core0.size(), stats.runqueue_depth(0).points().size());
  for (const minijson::Value& p : core0) {
    ASSERT_EQ(p.as_array().size(), 2u);
    EXPECT_GE(p.as_array()[1].as_number(), 0.0);
  }

  // Per-thread histogram map keyed by thread id.
  const auto& per_thread = root.at("per_thread_wakeup_latency").as_object();
  EXPECT_FALSE(per_thread.empty());

  // Balance rings parse and respect the bound.
  EXPECT_LE(root.at("recent_balance_passes").as_array().size(), 128u);
  EXPECT_LE(root.at("recent_balance_moves").as_array().size(), 128u);
}

TEST_P(SchedStatsParamTest, DetachFreezesCountersAndSeries) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), MakeSched(GetParam()));
  machine.Boot();
  SchedStats stats(&machine);

  ThreadSpec spec;
  spec.name = "churn";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(-1)
                                 .Compute(Microseconds(500))
                                 .Sleep(Microseconds(500))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Milliseconds(100));
  stats.Detach();
  EXPECT_FALSE(machine.has_observers());

  const uint64_t picks = stats.decisions().pickcpu_total;
  const uint64_t wakes = stats.wakeup_latency().count();
  const size_t samples = stats.runqueue_depth(0).points().size();
  ASSERT_GT(picks, 0u);
  engine.RunUntil(Seconds(1));
  EXPECT_EQ(stats.decisions().pickcpu_total, picks);
  EXPECT_EQ(stats.wakeup_latency().count(), wakes);
  EXPECT_EQ(stats.runqueue_depth(0).points().size(), samples);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SchedStatsParamTest, ::testing::Values("cfs", "ule"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace schedbattle
