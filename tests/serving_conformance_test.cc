// Serving conformance suite: every registered scheduler class must run the
// open-loop serving scenario monitor-clean, fill the request_* SLO verdicts,
// and keep the engine optimizations byte-invisible (shard counts {1, 2, 4}
// and tick elision on/off). Iterates the registry, so new classes are
// covered without touching this file.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/scenarios.h"
#include "src/core/spec.h"
#include "src/sched/registry.h"

namespace schedbattle {
namespace {

std::vector<SchedKind> AllKinds() { return SchedulerRegistry::Instance().AllKinds(); }

// Drops the "tick_elision" counter line from a schedstats JSON document (the
// one line that legitimately differs between elision on and off).
std::string StripTickElision(const std::string& json) {
  const size_t pos = json.find("\"tick_elision\"");
  if (pos == std::string::npos) {
    return json;
  }
  const size_t line_start = json.rfind('\n', pos) + 1;  // npos+1 == 0
  size_t line_end = json.find('\n', pos);
  line_end = line_end == std::string::npos ? json.size() : line_end + 1;
  return json.substr(0, line_start) + json.substr(line_end);
}

// The smoke preset at a CI-friendly scale (~20ms arrival window).
ExperimentSpec SmokeSpec(SchedKind kind, std::shared_ptr<ServeResult> out = nullptr) {
  return ServeSpec("serve-smoke", kind, 42, /*scale=*/0.04, std::move(out));
}

TEST(ServingConformanceTest, ServeSmokeIsMonitorClean) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    auto out = std::make_shared<ServeResult>();
    ExperimentSpec spec = SmokeSpec(kind, out);
    spec.check_invariants = true;
    const RunResult r = ExecuteSpec(spec);
    EXPECT_EQ(r.violations, 0u) << r.violation_report;
    EXPECT_GT(out->admitted, 0);
    EXPECT_EQ(out->completed, out->admitted) << "request left unserved in the drain window";
  }
}

TEST(ServingConformanceTest, RequestSloVerdictsArePopulated) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    auto out = std::make_shared<ServeResult>();
    ExperimentSpec spec = SmokeSpec(kind, out);
    const RunResult r = ExecuteSpec(spec);
    ASSERT_EQ(r.slo_verdicts.size(), spec.slo.size());
    for (const SloVerdict& v : r.slo_verdicts) {
      SCOPED_TRACE(v.objective.Describe());
      EXPECT_TRUE(IsRequestMetric(v.objective.metric));
      EXPECT_GT(v.observed, 0) << "request percentile missing from the verdict";
    }
    EXPECT_GT(out->request_p99, out->request_p50 / 2) << "percentiles inconsistent";
  }
}

TEST(ServingConformanceTest, ShardCountIsByteInvisible) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    RunResult serial;
    ServeResult serial_out;
    for (int shards : {1, 2, 4}) {
      auto out = std::make_shared<ServeResult>();
      ExperimentSpec spec = SmokeSpec(kind, out);
      spec.collect_schedstats = true;
      spec.cfs.group_scheduling = false;  // keep runs parallel-window eligible
      spec.shards = shards;
      const RunResult r = ExecuteSpec(spec);
      ASSERT_FALSE(r.schedstats_json.empty());
      if (shards == 1) {
        serial = r;
        serial_out = *out;
        continue;
      }
      EXPECT_EQ(r.schedstats_json, serial.schedstats_json)
          << shards << "-shard serving run diverged from the single-queue engine";
      EXPECT_EQ(r.finish_time, serial.finish_time);
      EXPECT_EQ(out->admitted, serial_out.admitted);
      EXPECT_EQ(out->request_p999, serial_out.request_p999);
      EXPECT_EQ(out->tail_series_json, serial_out.tail_series_json);
    }
  }
}

TEST(ServingConformanceTest, TicklessElisionIsByteIdentical) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    auto out_on = std::make_shared<ServeResult>();
    ExperimentSpec spec = SmokeSpec(kind, out_on);
    spec.collect_schedstats = true;
    auto out_off = std::make_shared<ServeResult>();
    ExperimentSpec off = ServeSpec("serve-smoke", kind, 42, 0.04, out_off);
    off.collect_schedstats = true;
    off.machine.tickless = false;
    const RunResult on = ExecuteSpec(spec);
    const RunResult eager = ExecuteSpec(off);
    ASSERT_FALSE(on.schedstats_json.empty());
    EXPECT_EQ(StripTickElision(on.schedstats_json), StripTickElision(eager.schedstats_json));
    EXPECT_EQ(on.finish_time, eager.finish_time);
    EXPECT_EQ(out_on->request_p999, out_off->request_p999);
    EXPECT_EQ(out_on->good, out_off->good);
  }
}

}  // namespace
}  // namespace schedbattle
