// Wake/fork placement policy tests for both schedulers, on topologies where
// the choices are observable.
#include <gtest/gtest.h>
#include <set>

#include "src/cfs/cfs_sched.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"

namespace schedbattle {
namespace {

ThreadSpec Hog(const std::string& name, SimDuration work, int seed) {
  ThreadSpec spec;
  spec.name = name;
  spec.body = MakeScriptBody(ScriptBuilder().Compute(work).Build(), Rng(seed));
  return spec;
}

TEST(UlePlacementTest, ForkGoesToLowestLoadCore) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(4), std::make_unique<UleScheduler>());
  machine.Boot();
  // Fill cores 0..2 with hogs (placement is sequential), then check thread 4
  // lands on the empty core 3.
  for (int i = 0; i < 3; ++i) {
    machine.Spawn(Hog("h" + std::to_string(i), Seconds(5), i + 1), nullptr);
  }
  engine.RunUntil(Milliseconds(10));
  SimThread* t = machine.Spawn(Hog("probe", Seconds(5), 99), nullptr);
  engine.RunUntil(Milliseconds(20));
  EXPECT_EQ(t->cpu(), 3);
}

TEST(UlePlacementTest, WakePrefersCacheAffineCore) {
  SimEngine engine;
  UleTunables tun;
  tun.affinity_window = Milliseconds(10);
  Machine machine(&engine, CpuTopology::Opteron6172(), std::make_unique<UleScheduler>(tun));
  machine.Boot();
  // A thread that runs briefly, sleeps briefly (within the affinity window),
  // and runs again must come back to the same core.
  ThreadSpec spec;
  spec.name = "napper";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(20)
                                 .Compute(Milliseconds(2))
                                 .Sleep(Milliseconds(3))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  SimThread* t = machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_EQ(t->migrations, 0u) << "short sleeps stay cache-affine";
}

TEST(UlePlacementTest, PickcpuAvoidsBusyCoresWhenIdleExists) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<UleScheduler>());
  machine.Boot();
  machine.Spawn(Hog("hog", Seconds(5), 1), nullptr);  // occupies a core
  engine.RunUntil(Milliseconds(100));
  // A long-sleeping thread wakes (not affine): must land on the idle core.
  ThreadSpec spec;
  spec.name = "sleeper";
  spec.body = MakeScriptBody(
      ScriptBuilder().Sleep(Milliseconds(500)).Compute(Milliseconds(5)).Build(), Rng(2));
  SimThread* t = machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  // It computed for 5ms with an idle core available: it must not have waited
  // behind the hog.
  EXPECT_LT(t->total_wait, Milliseconds(2)) << "woken thread must pick the idle core";
}

TEST(UlePlacementTest, ReturnPrevAblationSkipsScanning) {
  SimEngine engine;
  UleTunables tun;
  tun.pickcpu_return_prev = true;
  Machine machine(&engine, CpuTopology::Opteron6172(), std::make_unique<UleScheduler>(tun));
  machine.Boot();
  ThreadSpec spec;
  spec.name = "sleeper";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(50)
                                 .Compute(Microseconds(500))
                                 .Sleep(Milliseconds(5))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  SimThread* t = machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Seconds(2));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  // Wakes keep returning the previous CPU: no migrations, minimal scanning.
  EXPECT_EQ(t->migrations, 0u);
  EXPECT_LT(machine.counters().pickcpu_scans, 100u);
}

TEST(CfsPlacementTest, ForksSpreadAcrossIdleCores) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Opteron6172(), std::make_unique<CfsScheduler>());
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < 32; ++i) {
    threads.push_back(machine.Spawn(Hog("h" + std::to_string(i), Seconds(2), i + 1), nullptr));
  }
  engine.RunUntil(Milliseconds(200));
  std::vector<int> per_core(32, 0);
  for (SimThread* t : threads) {
    ASSERT_NE(t->cpu(), kInvalidCore);
    per_core[t->cpu()]++;
  }
  int doubled = 0;
  for (int c : per_core) {
    if (c > 1) {
      ++doubled;
    }
  }
  EXPECT_LE(doubled, 2) << "fork placement should spread 32 hogs over 32 cores";
}

TEST(CfsPlacementTest, ShortSleepWakesStayInLlc) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Opteron6172(), std::make_unique<CfsScheduler>());
  machine.Boot();
  ThreadSpec spec;
  spec.name = "napper";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(50)
                                 .Compute(Milliseconds(1))
                                 .Sleep(Milliseconds(2))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  SimThread* t = machine.Spawn(std::move(spec), nullptr);
  const CpuTopology& topo = machine.topology();
  engine.RunUntil(Milliseconds(50));
  const int home_llc = topo.LlcOf(t->cpu() != kInvalidCore ? t->cpu() : t->last_ran_cpu());
  engine.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_EQ(topo.LlcOf(t->last_ran_cpu()), home_llc)
      << "wake placement is LLC-restricted for 1-1 patterns";
}

TEST(CfsPlacementTest, OneToManyWakerSpreadsConsumers) {
  // A producer waking 16 distinct consumers repeatedly: wake_wide must kick
  // in and the consumers must not pile into the producer's LLC.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Opteron6172(), std::make_unique<CfsScheduler>());
  machine.Boot();
  auto sems = std::make_shared<std::vector<std::unique_ptr<SimSemaphore>>>();
  for (int i = 0; i < 16; ++i) {
    sems->push_back(std::make_unique<SimSemaphore>(0));
  }
  std::vector<SimThread*> consumers;
  for (int i = 0; i < 16; ++i) {
    ThreadSpec spec;
    spec.name = "consumer" + std::to_string(i);
    ScriptBuilder b;
    b.Loop(30);
    b.SemWait((*sems)[i].get());
    b.Compute(Milliseconds(2));
    b.EndLoop();
    b.Call([sems](ScriptEnv&) {});
    spec.body = MakeScriptBody(b.Build(), Rng(i + 1));
    consumers.push_back(machine.Spawn(std::move(spec), nullptr));
  }
  ThreadSpec prod;
  prod.name = "producer";
  ScriptBuilder pb;
  pb.Loop(30);
  for (int i = 0; i < 16; ++i) {
    pb.Compute(Microseconds(50));
    pb.SemPost((*sems)[i].get());
  }
  pb.Sleep(Milliseconds(4));
  pb.EndLoop();
  pb.Call([sems](ScriptEnv&) {});
  prod.body = MakeScriptBody(pb.Build(), Rng(77));
  machine.Spawn(std::move(prod), nullptr);
  engine.RunUntil(Seconds(5));

  // Count distinct LLCs the consumers last ran on: spread => more than one.
  std::set<int> llcs;
  for (SimThread* t : consumers) {
    llcs.insert(machine.topology().LlcOf(t->last_ran_cpu()));
  }
  EXPECT_GE(llcs.size(), 2u) << "1-to-many consumers must spread beyond one LLC";
}

}  // namespace
}  // namespace schedbattle
