// Property-based invariant tests: randomized workloads swept over seeds and
// schedulers (TEST_P), checking conservation laws the simulator must uphold
// regardless of scheduling decisions.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace schedbattle {
namespace {

struct PropParam {
  std::string sched;
  uint64_t seed;
  int cores;
};

class InvariantTest : public ::testing::TestWithParam<PropParam> {};

TEST_P(InvariantTest, ConservationLaws) {
  const PropParam& p = GetParam();
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(p.cores), MakeScheduler(p.sched),
                  MachineParams{.seed = p.seed});
  Workload workload(&machine);
  auto owner = std::make_unique<ScriptedApp>("mix", p.seed);
  Application* app = workload.Add(std::move(owner));
  machine.Boot();
  BuildRandomWorkload(machine, app, p.seed);
  const SimTime horizon = Seconds(30);
  workload.Run(horizon);
  const SimTime end = engine.now();

  // 1. All threads completed (no deadlock, no lost wakeups).
  EXPECT_EQ(machine.alive_threads(), 0);
  EXPECT_EQ(machine.counters().forks, machine.counters().exits);

  // 2. Total CPU time handed out never exceeds cores * wall time.
  SimDuration total_runtime = 0;
  for (const auto& t : machine.threads()) {
    total_runtime += t->total_runtime;
  }
  EXPECT_LE(total_runtime, static_cast<SimDuration>(p.cores) * end);

  // 3. Per-thread accounting: runtime + wait + sleep fits inside its
  // lifetime (from first dispatchable moment to exit).
  for (const auto& t : machine.threads()) {
    EXPECT_LE(t->total_runtime + t->total_wait + t->total_sleep, t->exit_time + Milliseconds(1))
        << t->name();
    EXPECT_GE(t->total_runtime, 0) << t->name();
    EXPECT_GE(t->total_wait, 0) << t->name();
  }

  // 4. Busy accounting matches: machine busy time >= sum of runtimes (busy
  // includes scheduler overhead charged to cores).
  EXPECT_GE(machine.TotalBusyTime() + Milliseconds(1), total_runtime);

  // 5. Overhead fraction is sane.
  EXPECT_GE(machine.OverheadFraction(), 0.0);
  EXPECT_LT(machine.OverheadFraction(), 0.25);
}

TEST_P(InvariantTest, DeterministicReplay) {
  const PropParam& p = GetParam();
  auto run_once = [&]() {
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(p.cores), MakeScheduler(p.sched),
                    MachineParams{.seed = p.seed});
    Workload workload(&machine);
    auto owner = std::make_unique<ScriptedApp>("mix", p.seed);
    Application* app = workload.Add(std::move(owner));
    machine.Boot();
    BuildRandomWorkload(machine, app, p.seed);
    workload.Run(Seconds(30));
    // Fingerprint: exact end time, context switches, migrations and the sum
    // of all runtimes.
    SimDuration total = 0;
    for (const auto& t : machine.threads()) {
      total += t->total_runtime;
    }
    return std::make_tuple(engine.now(), machine.counters().context_switches,
                           machine.counters().migrations, total);
  };
  EXPECT_EQ(run_once(), run_once()) << "identical seeds must replay identically";
}

TEST_P(InvariantTest, WorkConservation) {
  // With more always-runnable hogs than cores, no core may idle until the
  // hogs start exiting: total runtime == cores * elapsed (within tick slop).
  const PropParam& p = GetParam();
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(p.cores), MakeScheduler(p.sched),
                  MachineParams{.seed = p.seed});
  machine.Boot();
  std::vector<SimThread*> threads;
  for (int i = 0; i < p.cores * 2; ++i) {
    ThreadSpec spec;
    spec.name = "hog";
    spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(10)).Build(), Rng(p.seed + i));
    threads.push_back(machine.Spawn(std::move(spec), nullptr));
  }
  engine.RunUntil(Seconds(5));
  SimDuration total = 0;
  for (SimThread* t : threads) {
    total += t->RuntimeAt(engine.now());
  }
  const double utilization =
      static_cast<double>(total) / (static_cast<double>(p.cores) * ToSeconds(5) * kSecond);
  EXPECT_GT(utilization, 0.98) << "work-conserving scheduler must not idle cores";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantTest,
    ::testing::Values(PropParam{"cfs", 1, 1}, PropParam{"cfs", 2, 2}, PropParam{"cfs", 3, 4},
                      PropParam{"cfs", 4, 8}, PropParam{"ule", 1, 1}, PropParam{"ule", 2, 2},
                      PropParam{"ule", 3, 4}, PropParam{"ule", 4, 8}, PropParam{"cfs", 99, 3},
                      PropParam{"ule", 99, 3}),
    [](const auto& info) {
      return info.param.sched + "_seed" + std::to_string(info.param.seed) + "_c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace schedbattle
