// Tickless-mode correctness: NOHZ-style tick elision is a pure strength
// reduction. With elision on, idle cores arm no tick and solo-running cores
// batch runs of ticks into one closed-form catch-up — but every observable
// (schedstats snapshots, finish times, machine counters, monitor verdicts)
// must be byte-identical to the eager-tick run. These tests execute the
// paper's figure scenarios and a generated fuzz corpus in both modes and
// compare everything except the tick_elision counter line (the one line
// that legitimately differs).
//
// Also here: the tick-event lifetime regression test (a SimEngine that
// outlives its Machine must not fire dangling per-core tick events) and the
// counter bookkeeping invariant fired_on + elided_on == fired_off.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/check/fuzz.h"
#include "src/core/scenarios.h"
#include "src/core/spec.h"
#include "src/sched/machine.h"
#include "src/sim/engine.h"
#include "tests/minijson.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

// Drops the "tick_elision" counter line from a schedstats JSON document.
std::string StripTickElision(const std::string& json) {
  const size_t pos = json.find("\"tick_elision\"");
  if (pos == std::string::npos) {
    return json;
  }
  const size_t line_start = json.rfind('\n', pos) + 1;  // npos+1 == 0
  size_t line_end = json.find('\n', pos);
  line_end = line_end == std::string::npos ? json.size() : line_end + 1;
  return json.substr(0, line_start) + json.substr(line_end);
}

struct TickCounts {
  uint64_t fired = 0;
  uint64_t elided = 0;
  uint64_t batches = 0;
};

TickCounts CountsFrom(const std::string& stats_json) {
  const minijson::Value root = minijson::Parse(stats_json);
  const minijson::Value& te = root.at("tick_elision");
  TickCounts c;
  c.fired = static_cast<uint64_t>(te.at("ticks_fired").as_number());
  c.elided = static_cast<uint64_t>(te.at("ticks_elided").as_number());
  c.batches = static_cast<uint64_t>(te.at("batch_updates").as_number());
  return c;
}

// Runs `spec` with elision on and forced off and asserts full observational
// equivalence plus the counter bookkeeping invariant: every grid tick the
// eager run fires is either fired or elided by the tickless run, and the
// eager run elides nothing. `expect_clean` additionally requires a silent
// MonitorSuite; fig6's mid-run unpin trips the work-conservation monitor by
// construction (14.5s of pinned waiting becomes eligible all at once), so
// that scenario only asserts the verdicts match across modes.
void ExpectTicklessEquivalent(ExperimentSpec spec, const std::string& what,
                              bool expect_clean = true) {
  spec.collect_schedstats = true;
  spec.check_invariants = true;
  ExperimentSpec off = spec;
  off.machine.tickless = false;
  const RunResult on = ExecuteSpec(spec);
  const RunResult eager = ExecuteSpec(off);
  ASSERT_FALSE(on.schedstats_json.empty()) << what;
  if (expect_clean) {
    EXPECT_EQ(on.violations, 0u) << what << "\n" << on.violation_report;
    EXPECT_EQ(eager.violations, 0u) << what << "\n" << eager.violation_report;
  }
  EXPECT_EQ(on.violations, eager.violations) << what;
  EXPECT_EQ(on.violation_report, eager.violation_report) << what;
  EXPECT_EQ(StripTickElision(on.schedstats_json), StripTickElision(eager.schedstats_json))
      << what << ": schedstats diverged between tickless and eager runs";
  EXPECT_EQ(on.finish_time, eager.finish_time) << what;
  EXPECT_EQ(on.counters.context_switches, eager.counters.context_switches) << what;
  EXPECT_EQ(on.counters.migrations, eager.counters.migrations) << what;
  const TickCounts tc_on = CountsFrom(on.schedstats_json);
  const TickCounts tc_eager = CountsFrom(eager.schedstats_json);
  EXPECT_EQ(tc_on.fired + tc_on.elided, tc_eager.fired) << what;
  EXPECT_EQ(tc_eager.elided, 0u) << what;
}

// Figure 1 / Table 2: fibo + sysbench competing on one core — the solo /
// near-solo regime where the closed-form CFS boundary does the batching.
TEST(TicklessEquivalenceTest, Fig1FiboSysbenchIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    auto out = std::make_shared<FiboSysbenchResult>();
    ExpectTicklessEquivalent(FiboSysbenchSpec(kind, 42, 0.05, out),
                             std::string("fig1/") + std::string(SchedName(kind)));
  }
}

// Figure 6: 512 spinners pinned to core 0 then unpinned — 31 cores idle for
// 14.5 simulated seconds (the idle-elision path), then a balancer storm.
TEST(TicklessEquivalenceTest, Fig6LoadBalanceIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    auto out = std::make_shared<LoadBalanceResult>();
    ExpectTicklessEquivalent(LoadBalanceSpec(kind, 42, Seconds(20), 1, out),
                             std::string("fig6/") + std::string(SchedName(kind)),
                             /*expect_clean=*/false);
  }
}

// Figure 9 style: two suite applications co-scheduled on the paper's NUMA
// machine with background system noise.
TEST(TicklessEquivalenceTest, Fig9MultiAppIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    ExperimentSpec spec = ExperimentSpec::Multicore(kind, 42);
    spec.scale = 0.02;
    spec.horizon = Seconds(30);
    spec.Named("tickless-fig9");
    spec.Add(RegistryApp("apache"));
    spec.Add(RegistryApp("sysbench"));
    ExpectTicklessEquivalent(spec, std::string("fig9/") + std::string(SchedName(kind)));
  }
}

// 25 generated fuzz specs x both schedulers = 50 randomized workloads
// (mutexes, pipes, barriers, odd machine shapes), each run in both modes.
TEST(TicklessEquivalenceTest, FuzzCorpusIsByteIdentical) {
  Rng root(7);
  int runs = 0;
  for (int i = 0; i < 25; ++i) {
    Rng stream = root.Split();
    const FuzzSpec base = GenerateFuzzSpec(&stream, SchedKind::kCfs, 0.05);
    for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
      FuzzSpec s = base;
      s.sched = kind;
      ExperimentSpec spec = s.ToExperimentSpec();
      ExpectTicklessEquivalent(spec, s.Label());
      ++runs;
    }
  }
  EXPECT_EQ(runs, 50);
}

// Elision must actually happen on an idle-heavy machine: one spinner on a
// 4-core box leaves 3 cores idle and the busy core solo, so almost every
// grid tick is batched. With the param off, nothing may be elided.
TEST(TicklessElisionTest, SoloAndIdleCoresElideTicks) {
  if (!TicklessEnabled()) {
    GTEST_SKIP() << "global tickless toggle is off (SCHEDBATTLE_TICKLESS)";
  }
  for (const char* name : {"cfs", "ule"}) {
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(4), MakeScheduler(name));
    machine.Boot();
    machine.Spawn(Spinner("solo", 1), nullptr);
    engine.RunUntil(Seconds(2));
    machine.CatchUpTicks();
    EXPECT_GT(machine.tick_elision().ticks_elided, 0u) << name;
  }
  SimEngine engine;
  MachineParams params;
  params.tickless = false;
  Machine machine(&engine, CpuTopology::Flat(4), MakeScheduler("cfs"), params);
  machine.Boot();
  machine.Spawn(Spinner("solo", 1), nullptr);
  engine.RunUntil(Seconds(2));
  machine.CatchUpTicks();
  EXPECT_EQ(machine.tick_elision().ticks_elided, 0u);
  EXPECT_GT(machine.tick_elision().ticks_fired, 0u);
}

// Regression: per-core tick events used to capture `this` without a retained
// handle, so destroying the Machine while its SimEngine lived on left armed
// tick closures pointing at freed memory. The teardown must cancel them —
// running the engine far past the tick period afterwards is then a no-op.
TEST(TickLifetimeTest, EngineOutlivesMachineWithoutDanglingTickEvents) {
  for (const char* name : {"cfs", "ule"}) {
    SimEngine engine;
    {
      Machine machine(&engine, CpuTopology::Flat(2), MakeScheduler(name));
      machine.Boot();
      machine.Spawn(Spinner("spin", 1), nullptr);
      engine.RunUntil(Milliseconds(5));
    }  // ~Machine: every retained tick/completion/resched handle cancelled
    engine.RunUntil(Milliseconds(100));  // many tick periods later: no UAF
  }
  // Same teardown with elision disabled (every core's tick stays armed).
  SimEngine engine;
  {
    MachineParams params;
    params.tickless = false;
    Machine machine(&engine, CpuTopology::Flat(2), MakeScheduler("ule"), params);
    machine.Boot();
    machine.Spawn(Spinner("spin", 1), nullptr);
    engine.RunUntil(Milliseconds(5));
  }
  engine.RunUntil(Milliseconds(100));
}

}  // namespace
}  // namespace schedbattle
