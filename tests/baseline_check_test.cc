// Unit tests for the bench_baseline --check verdict helpers
// (tools/baseline_check.h): the floor zero-skip rule — a committed 0 means
// "key added to the schema, not yet measured", so the gate must neither pass
// nor fail on it — and the ceiling rule, which deliberately has no such skip
// because a committed 0 allocs/event is a real budget.
#include <gtest/gtest.h>

#include "tools/baseline_check.h"

namespace schedbattle {
namespace {

TEST(BaselineCheckTest, FloorSkipsZeroCommittedValue) {
  // Regardless of what was measured: a zero baseline is a placeholder, and a
  // floor of 0 would otherwise pass vacuously forever.
  EXPECT_EQ(CheckBaselineFloor(0.0, 123.0, 0.15), BaselineVerdict::kSkippedZeroBaseline);
  EXPECT_EQ(CheckBaselineFloor(0.0, 0.0, 0.15), BaselineVerdict::kSkippedZeroBaseline);
}

TEST(BaselineCheckTest, FloorPassesWithinTolerance) {
  EXPECT_EQ(CheckBaselineFloor(100.0, 100.0, 0.15), BaselineVerdict::kOk);
  EXPECT_EQ(CheckBaselineFloor(100.0, 90.0, 0.15), BaselineVerdict::kOk);
  EXPECT_EQ(CheckBaselineFloor(100.0, 85.0, 0.15), BaselineVerdict::kOk);  // exactly at floor
  EXPECT_EQ(CheckBaselineFloor(100.0, 200.0, 0.15), BaselineVerdict::kOk);  // improvement
}

TEST(BaselineCheckTest, FloorFlagsRegression) {
  EXPECT_EQ(CheckBaselineFloor(100.0, 84.0, 0.15), BaselineVerdict::kRegressed);
  EXPECT_EQ(CheckBaselineFloor(100.0, 0.0, 0.15), BaselineVerdict::kRegressed);
}

TEST(BaselineCheckTest, CeilingChecksZeroCommittedValue) {
  // No zero skip for ceilings: committed 0 allocs/event is a real budget.
  // The additive slack keeps the bound non-degenerate.
  EXPECT_EQ(CheckBaselineCeiling(0.0, 0.0, 0.15, 0.2), BaselineVerdict::kOk);
  EXPECT_EQ(CheckBaselineCeiling(0.0, 0.1, 0.15, 0.2), BaselineVerdict::kOk);
  EXPECT_EQ(CheckBaselineCeiling(0.0, 1.0, 0.15, 0.2), BaselineVerdict::kRegressed);
}

TEST(BaselineCheckTest, CeilingAllowsToleranceAndSlack) {
  // ceiling = 2.0 * 1.15 + 0.2 = 2.5
  EXPECT_EQ(CheckBaselineCeiling(2.0, 2.5, 0.15, 0.2), BaselineVerdict::kOk);
  EXPECT_EQ(CheckBaselineCeiling(2.0, 2.51, 0.15, 0.2), BaselineVerdict::kRegressed);
}

TEST(BaselineCheckTest, LabelsAreStable) {
  // CI log output greps on these.
  EXPECT_STREQ(BaselineVerdictLabel(BaselineVerdict::kOk), "ok");
  EXPECT_STREQ(BaselineVerdictLabel(BaselineVerdict::kRegressed), "REGRESSED");
  EXPECT_STREQ(BaselineVerdictLabel(BaselineVerdict::kSkippedZeroBaseline),
               "skipped (no committed value yet)");
}

}  // namespace
}  // namespace schedbattle
