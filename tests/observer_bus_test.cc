// ObserverBus / decision-probe tests: multiple observers attach additively
// (regression for the old single-observer slot that silently overwrote), and
// the OnPickCpu / OnBalancePass / OnPreempt provenance probes fire with
// sensible payloads under both schedulers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cfs/cfs_sched.h"
#include "src/sched/machine.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"

namespace schedbattle {
namespace {

// Counts every callback and keeps the probe payloads for inspection.
struct CountingObserver : MachineObserver {
  int dispatches = 0;
  int deschedules = 0;
  int wakes = 0;
  int migrates = 0;
  int forks = 0;
  std::vector<PickCpuDecision> picks;
  std::vector<BalancePassRecord> balances;
  std::vector<PreemptDecision> preempts;

  void OnDispatch(SimTime, CoreId, const SimThread&) override { ++dispatches; }
  void OnDeschedule(SimTime, CoreId, const SimThread&, char) override { ++deschedules; }
  void OnWake(SimTime, const SimThread&, CoreId) override { ++wakes; }
  void OnMigrate(SimTime, const SimThread&, CoreId, CoreId) override { ++migrates; }
  void OnFork(SimTime, const SimThread&, CoreId) override { ++forks; }
  void OnPickCpu(SimTime, const PickCpuDecision& d) override { picks.push_back(d); }
  void OnBalancePass(SimTime, const BalancePassRecord& r) override { balances.push_back(r); }
  void OnPreempt(SimTime, const PreemptDecision& d) override { preempts.push_back(d); }

  int total() const { return dispatches + deschedules + wakes + migrates + forks; }
};

std::unique_ptr<Scheduler> MakeSched(const std::string& kind) {
  if (kind == "cfs") {
    return std::make_unique<CfsScheduler>();
  }
  return std::make_unique<UleScheduler>();
}

void SpawnSleeper(Machine& m, const std::string& name, int loops) {
  ThreadSpec spec;
  spec.name = name;
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(loops)
                                 .Compute(Microseconds(500))
                                 .Sleep(Microseconds(500))
                                 .EndLoop()
                                 .Build(),
                             Rng(7));
  m.Spawn(std::move(spec), nullptr);
}

class ObserverBusTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&engine_, CpuTopology::Flat(4),
                                         MakeSched(GetParam()));
    machine_->Boot();
  }
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
};

TEST_P(ObserverBusTest, TwoObserversBothReceiveEvents) {
  // Regression: with the old single `observer_` slot the second attach
  // silently replaced the first, so `a` would have seen nothing.
  CountingObserver a, b;
  machine_->AddObserver(&a);
  machine_->AddObserver(&b);
  EXPECT_EQ(machine_->observers().size(), 2);

  SpawnSleeper(*machine_, "w", 10);
  engine_.RunUntil(Seconds(1));

  EXPECT_GT(a.total(), 0);
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.deschedules, b.deschedules);
  EXPECT_EQ(a.wakes, b.wakes);
  EXPECT_EQ(a.forks, b.forks);
  EXPECT_EQ(a.picks.size(), b.picks.size());
}

TEST_P(ObserverBusTest, DoubleAttachIsIdempotent) {
  CountingObserver twice, once;
  machine_->AddObserver(&twice);
  machine_->AddObserver(&twice);  // must not double-deliver
  machine_->AddObserver(&once);
  EXPECT_EQ(machine_->observers().size(), 2);

  SpawnSleeper(*machine_, "w", 5);
  engine_.RunUntil(Seconds(1));

  EXPECT_GT(once.total(), 0);
  EXPECT_EQ(twice.total(), once.total());
}

TEST_P(ObserverBusTest, RemoveStopsDelivery) {
  CountingObserver removed, kept;
  machine_->AddObserver(&removed);
  machine_->AddObserver(&kept);

  SpawnSleeper(*machine_, "w", 200);
  engine_.RunUntil(Milliseconds(10));
  machine_->RemoveObserver(&removed);
  EXPECT_FALSE(machine_->observers().Contains(&removed));
  EXPECT_TRUE(machine_->observers().Contains(&kept));

  const int frozen = removed.total();
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(removed.total(), frozen);
  EXPECT_GT(kept.total(), frozen);
}

TEST_P(ObserverBusTest, PickCpuProbeCarriesProvenance) {
  CountingObserver obs;
  machine_->AddObserver(&obs);

  SpawnSleeper(*machine_, "w", 20);
  engine_.RunUntil(Seconds(1));

  // One pick per fork + one per wakeup.
  ASSERT_GT(obs.picks.size(), 10u);
  EXPECT_EQ(obs.picks.size(), static_cast<size_t>(machine_->counters().forks +
                                                  machine_->counters().wakeups));
  for (const PickCpuDecision& d : obs.picks) {
    EXPECT_GE(d.chosen, 0);
    EXPECT_LT(d.chosen, machine_->num_cores());
    EXPECT_GE(d.cores_scanned, 0);
    if (d.affine_hit) {
      EXPECT_EQ(d.chosen, d.prev);
    }
  }
  // A lone sleeper on an idle machine should be placed affine at least once.
  bool any_affine = false;
  for (const PickCpuDecision& d : obs.picks) {
    any_affine |= d.affine_hit;
  }
  EXPECT_TRUE(any_affine);
}

TEST_P(ObserverBusTest, PinnedThreadReportsPinnedReason) {
  CountingObserver obs;
  machine_->AddObserver(&obs);

  ThreadSpec spec;
  spec.name = "pinned";
  spec.affinity = CpuMask::Single(2);
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(3)
                                 .Compute(Microseconds(100))
                                 .Sleep(Microseconds(100))
                                 .EndLoop()
                                 .Build(),
                             Rng(3));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));

  ASSERT_FALSE(obs.picks.empty());
  for (const PickCpuDecision& d : obs.picks) {
    EXPECT_EQ(d.reason, PickReason::kPinned) << PickReasonName(d.reason);
    EXPECT_EQ(d.chosen, 2);
  }
}

TEST_P(ObserverBusTest, BalanceProbeReportsMoves) {
  // Mini Figure 6: overload core 0 with pinned spinners, unpin, and expect
  // the balancer (CFS hierarchy / ULE steal+periodic) to report real moves.
  CountingObserver obs;
  machine_->AddObserver(&obs);

  std::vector<SimThread*> spinners;
  for (int i = 0; i < 16; ++i) {
    ThreadSpec spec;
    spec.name = "spin" + std::to_string(i);
    spec.affinity = CpuMask::Single(0);
    spec.body =
        MakeScriptBody(ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build(),
                       Rng(i + 1));
    spinners.push_back(machine_->Spawn(std::move(spec), nullptr));
  }
  Machine* m = machine_.get();
  engine_.At(Milliseconds(500), [m, &spinners] {
    const CpuMask all = CpuMask::AllOf(m->num_cores());
    for (SimThread* t : spinners) {
      m->SetAffinity(t, all);
    }
  });
  engine_.RunUntil(Seconds(5));

  ASSERT_FALSE(obs.balances.empty());
  int moved_total = 0;
  for (const BalancePassRecord& r : obs.balances) {
    EXPECT_GE(r.src, 0);
    EXPECT_GE(r.dst, 0);
    EXPECT_NE(r.src, r.dst);
    EXPECT_GE(r.threads_moved, 0);
    moved_total += r.threads_moved;
    if (r.threads_moved > 0) {
      // A real move must come from a source that looked busier.
      EXPECT_GE(r.src_load, r.dst_load);
      EXPECT_GE(r.imbalance_pct, 0.0);
    }
  }
  EXPECT_GT(moved_total, 0) << "balancer never reported moving a thread";
  EXPECT_EQ(obs.migrates, machine_->counters().migrations);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ObserverBusTest, ::testing::Values("cfs", "ule"),
                         [](const auto& info) { return info.param; });

TEST(ObserverProbeTest, CfsPreemptProbeReportsGranularityCheck) {
  // CFS runs the wakeup-granularity check whenever a thread wakes onto a
  // busy core; with one spinner and one sleeper sharing core 0, every wake
  // triggers a check against the spinner.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  machine.Boot();
  CountingObserver obs;
  machine.AddObserver(&obs);

  ThreadSpec spin;
  spin.name = "spin";
  spin.body = MakeScriptBody(ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build(),
                             Rng(1));
  machine.Spawn(std::move(spin), nullptr);
  ThreadSpec sleeper;
  sleeper.name = "sleeper";
  sleeper.body = MakeScriptBody(ScriptBuilder()
                                    .Loop(50)
                                    .Compute(Microseconds(100))
                                    .Sleep(Milliseconds(2))
                                    .EndLoop()
                                    .Build(),
                                Rng(2));
  machine.Spawn(std::move(sleeper), nullptr);
  engine.RunUntil(Seconds(1));

  ASSERT_FALSE(obs.preempts.empty());
  uint64_t fired = 0;
  for (const PreemptDecision& d : obs.preempts) {
    EXPECT_NE(d.preemptor, d.victim);
    EXPECT_EQ(d.core, 0);
    if (d.fired) {
      ++fired;
      EXPECT_GT(d.margin, 0);
    }
  }
  EXPECT_EQ(fired, machine.counters().wakeup_preemptions);
  EXPECT_GT(fired, 0u);
}

TEST(ObserverProbeTest, UlePreemptProbeRespectsDisabledPreemption) {
  // Stock ULE has full preemption off: the probe still reports the checks,
  // but none fire.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  CountingObserver obs;
  machine.AddObserver(&obs);

  ThreadSpec spin;
  spin.name = "spin";
  spin.body = MakeScriptBody(ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build(),
                             Rng(1));
  machine.Spawn(std::move(spin), nullptr);
  ThreadSpec sleeper;
  sleeper.name = "sleeper";
  sleeper.body = MakeScriptBody(ScriptBuilder()
                                    .Loop(50)
                                    .Compute(Microseconds(100))
                                    .Sleep(Milliseconds(2))
                                    .EndLoop()
                                    .Build(),
                                Rng(2));
  machine.Spawn(std::move(sleeper), nullptr);
  engine.RunUntil(Seconds(1));

  ASSERT_FALSE(obs.preempts.empty());
  for (const PreemptDecision& d : obs.preempts) {
    EXPECT_FALSE(d.fired);
  }
  EXPECT_EQ(machine.counters().wakeup_preemptions, 0u);
}

}  // namespace
}  // namespace schedbattle
