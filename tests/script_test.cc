// Script VM tests: loops, nesting, dynamic durations, hooks, yields.
#include "src/workload/script.h"

#include <gtest/gtest.h>

#include "src/cfs/cfs_sched.h"
#include "src/workload/workload.h"

namespace schedbattle {
namespace {

class ScriptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&engine_, CpuTopology::Flat(1),
                                         std::make_unique<CfsScheduler>());
    machine_->Boot();
  }
  SimThread* Run(std::shared_ptr<const Script> script, SimTime until = Seconds(10)) {
    ThreadSpec spec;
    spec.name = "t";
    spec.body = MakeScriptBody(std::move(script), Rng(1));
    SimThread* t = machine_->Spawn(std::move(spec), nullptr);
    engine_.RunUntil(until);
    return t;
  }
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
};

TEST_F(ScriptTest, EmptyScriptExitsImmediately) {
  SimThread* t = Run(ScriptBuilder().Build());
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_EQ(t->total_runtime, 0);
}

TEST_F(ScriptTest, FixedLoopRunsExactCount) {
  auto count = std::make_shared<int>(0);
  SimThread* t = Run(ScriptBuilder()
                         .Loop(7)
                         .Compute(Milliseconds(1))
                         .Call([count](ScriptEnv&) { ++*count; })
                         .EndLoop()
                         .Build());
  EXPECT_EQ(*count, 7);
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_NEAR(ToSeconds(t->total_runtime), 0.007, 0.001);
}

TEST_F(ScriptTest, ZeroCountLoopSkipsBody) {
  auto count = std::make_shared<int>(0);
  Run(ScriptBuilder()
          .Loop(0)
          .Call([count](ScriptEnv&) { ++*count; })
          .Compute(Milliseconds(1))
          .EndLoop()
          .Compute(Milliseconds(1))
          .Build());
  EXPECT_EQ(*count, 0);
}

TEST_F(ScriptTest, NestedLoops) {
  auto count = std::make_shared<int>(0);
  Run(ScriptBuilder()
          .Loop(3)
          .Loop(4)
          .Compute(Microseconds(100))
          .Call([count](ScriptEnv&) { ++*count; })
          .EndLoop()
          .EndLoop()
          .Build());
  EXPECT_EQ(*count, 12);
}

TEST_F(ScriptTest, NestedLoopReentersInnerCount) {
  // The inner loop count must reset on each outer iteration.
  auto inner_counts = std::make_shared<std::vector<int>>();
  auto current = std::make_shared<int>(0);
  Run(ScriptBuilder()
          .Loop(3)
          .Call([current](ScriptEnv&) { *current = 0; })
          .Loop(2)
          .Compute(Microseconds(50))
          .Call([current](ScriptEnv&) { ++*current; })
          .EndLoop()
          .Call([inner_counts, current](ScriptEnv&) { inner_counts->push_back(*current); })
          .EndLoop()
          .Build());
  EXPECT_EQ(*inner_counts, (std::vector<int>{2, 2, 2}));
}

TEST_F(ScriptTest, LoopWhilePredicate) {
  auto remaining = std::make_shared<int>(5);
  SimThread* t = Run(ScriptBuilder()
                         .LoopWhile([remaining](ScriptEnv&) { return *remaining > 0; })
                         .Compute(Milliseconds(1))
                         .Call([remaining](ScriptEnv&) { --*remaining; })
                         .EndLoop()
                         .Build());
  EXPECT_EQ(*remaining, 0);
  EXPECT_EQ(t->state(), ThreadState::kDead);
}

TEST_F(ScriptTest, DynamicDurationsUsePerThreadRng) {
  auto total = std::make_shared<SimDuration>(0);
  SimThread* t = Run(ScriptBuilder()
                         .Loop(100)
                         .ComputeFn([total](ScriptEnv& env) {
                           const SimDuration d =
                               static_cast<SimDuration>(env.rng.NextExponential(1.0e5));
                           *total += d;
                           return d;
                         })
                         .EndLoop()
                         .Build());
  EXPECT_EQ(t->state(), ThreadState::kDead);
  // Runtime equals the sum of the drawn durations.
  EXPECT_NEAR(static_cast<double>(t->total_runtime), static_cast<double>(*total),
              static_cast<double>(Microseconds(10)));
}

TEST_F(ScriptTest, SleepAdvancesWallClockNotRuntime) {
  SimThread* t = Run(ScriptBuilder().Sleep(Milliseconds(100)).Compute(Milliseconds(5)).Build());
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_GE(t->exit_time, Milliseconds(105));
  EXPECT_LT(t->total_runtime, Milliseconds(7));
  EXPECT_GE(t->total_sleep, Milliseconds(100));
}

TEST_F(ScriptTest, YieldKeepsThreadRunnable) {
  auto count = std::make_shared<int>(0);
  SimThread* t = Run(ScriptBuilder()
                         .Loop(5)
                         .Compute(Milliseconds(1))
                         .Call([count](ScriptEnv&) { ++*count; })
                         .Yield()
                         .EndLoop()
                         .Build());
  EXPECT_EQ(*count, 5);
  EXPECT_EQ(t->state(), ThreadState::kDead);
}

TEST_F(ScriptTest, InfiniteLoopRunsUntilHorizon) {
  SimThread* t = Run(ScriptBuilder().Loop(-1).Compute(Milliseconds(1)).EndLoop().Build(),
                     /*until=*/Seconds(2));
  EXPECT_EQ(t->state(), ThreadState::kRunning);
  EXPECT_NEAR(ToSeconds(t->RuntimeAt(engine_.now())), 2.0, 0.05);
}

TEST_F(ScriptTest, SharedScriptIndependentBodies) {
  // Two threads share one Script but must have independent loop state.
  auto script = ScriptBuilder().Loop(50).Compute(Milliseconds(1)).EndLoop().Build();
  ThreadSpec a, b;
  a.name = "a";
  a.body = MakeScriptBody(script, Rng(1));
  b.name = "b";
  b.body = MakeScriptBody(script, Rng(2));
  SimThread* ta = machine_->Spawn(std::move(a), nullptr);
  SimThread* tb = machine_->Spawn(std::move(b), nullptr);
  engine_.RunUntil(Seconds(10));
  EXPECT_EQ(ta->state(), ThreadState::kDead);
  EXPECT_EQ(tb->state(), ThreadState::kDead);
  EXPECT_NEAR(ToSeconds(ta->total_runtime), 0.05, 0.002);
  EXPECT_NEAR(ToSeconds(tb->total_runtime), 0.05, 0.002);
}

}  // namespace
}  // namespace schedbattle
