// Machine edge cases: affinity churn, overhead charging, idle accounting,
// timing precision, re-entrancy of wakes, kicking idle cores.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace schedbattle {
namespace {

class MachineEdgeTest : public ::testing::TestWithParam<std::string> {
 protected:
  void Build(int cores, MachineParams params = {}) {
    machine_ = std::make_unique<Machine>(&engine_, CpuTopology::Flat(cores),
                                         MakeScheduler(GetParam()), params);
    machine_->Boot();
  }
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
};

TEST_P(MachineEdgeTest, ComputeTimingIsExact) {
  MachineParams params;
  params.context_switch_cost = 0;  // isolate pure compute timing
  Build(1, params);
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(123)).Build(), Rng(1));
  SimThread* t = machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(t->exit_time, Milliseconds(123));
  EXPECT_EQ(t->total_runtime, Milliseconds(123));
}

TEST_P(MachineEdgeTest, ContextSwitchCostIsCharged) {
  MachineParams params;
  params.context_switch_cost = Microseconds(10);
  Build(1, params);
  auto script = ScriptBuilder().Compute(Milliseconds(100)).Build();
  ThreadSpec a, b;
  a.name = "a";
  a.body = MakeScriptBody(script, Rng(1));
  b.name = "b";
  b.body = MakeScriptBody(script, Rng(2));
  machine_->Spawn(std::move(a), nullptr);
  machine_->Spawn(std::move(b), nullptr);
  engine_.RunUntil(Seconds(2));
  // Total wall time exceeds the pure work by the switch costs.
  EXPECT_GT(machine_->counters().context_switches, 2u);
  EXPECT_GT(machine_->counters().overhead_ns[0], 0);
  EXPECT_GE(engine_.now(), Milliseconds(200));
}

TEST_P(MachineEdgeTest, AffinityMoveWhileRunnable) {
  Build(2);
  // Two hogs pinned to core 0; the queued one gets re-pinned to core 1 and
  // must move there.
  ThreadSpec a;
  a.name = "runner";
  a.affinity = CpuMask::Single(0);
  a.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(2)).Build(), Rng(1));
  machine_->Spawn(std::move(a), nullptr);
  ThreadSpec b;
  b.name = "queued";
  b.affinity = CpuMask::Single(0);
  b.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(2)).Build(), Rng(2));
  SimThread* tb = machine_->Spawn(std::move(b), nullptr);
  engine_.After(Milliseconds(1), [&] { machine_->SetAffinity(tb, CpuMask::Single(1)); });
  engine_.RunUntil(Milliseconds(100));
  EXPECT_EQ(tb->cpu(), 1);
  EXPECT_EQ(tb->state(), ThreadState::kRunning);
}

TEST_P(MachineEdgeTest, AffinityMoveWhileRunning) {
  Build(2);
  ThreadSpec a;
  a.name = "runner";
  a.affinity = CpuMask::Single(0);
  a.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(2)).Build(), Rng(1));
  SimThread* ta = machine_->Spawn(std::move(a), nullptr);
  engine_.After(Milliseconds(5), [&] { machine_->SetAffinity(ta, CpuMask::Single(1)); });
  engine_.RunUntil(Milliseconds(100));
  EXPECT_EQ(ta->cpu(), 1);
  EXPECT_EQ(ta->state(), ThreadState::kRunning);
  EXPECT_GE(ta->migrations, 1u);
}

TEST_P(MachineEdgeTest, AffinityMoveWhileBlocked) {
  Build(2);
  ThreadSpec a;
  a.name = "sleeper";
  a.affinity = CpuMask::Single(0);
  a.body = MakeScriptBody(
      ScriptBuilder().Sleep(Milliseconds(50)).Compute(Milliseconds(10)).Build(), Rng(1));
  SimThread* ta = machine_->Spawn(std::move(a), nullptr);
  engine_.After(Milliseconds(10), [&] { machine_->SetAffinity(ta, CpuMask::Single(1)); });
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(ta->state(), ThreadState::kDead);
  EXPECT_EQ(ta->last_ran_cpu(), 1) << "wake placement must honour the new mask";
}

TEST_P(MachineEdgeTest, WakeOnNonBlockedThreadIsNoop) {
  Build(1);
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(10)).Build(), Rng(1));
  SimThread* t = machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Milliseconds(1));
  EXPECT_EQ(t->state(), ThreadState::kRunning);
  EXPECT_FALSE(machine_->Wake(t, kInvalidCore));
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
  EXPECT_FALSE(machine_->Wake(t, kInvalidCore));
}

TEST_P(MachineEdgeTest, IdleAccountingSumsCorrectly) {
  Build(2);
  ThreadSpec spec;
  spec.name = "t";
  spec.affinity = CpuMask::Single(0);
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(100)).Build(), Rng(1));
  machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Milliseconds(200));
  // Core 1 idled the whole time, core 0 idled ~100ms.
  const double busy = ToSeconds(machine_->TotalBusyTime());
  EXPECT_NEAR(busy, 0.1, 0.005);
}

TEST_P(MachineEdgeTest, ChargeOverheadDelaysRunningThread) {
  MachineParams params;
  params.context_switch_cost = 0;
  Build(1, params);
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(10)).Build(), Rng(1));
  SimThread* t = machine_->Spawn(std::move(spec), nullptr);
  engine_.After(Milliseconds(2),
                [&] { machine_->ChargeOverhead(0, Milliseconds(3), OverheadKind::kLoadBalance); });
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(t->exit_time, Milliseconds(13)) << "overhead must steal CPU from the running thread";
}

TEST_P(MachineEdgeTest, ZeroLengthComputeAndSleepAreInstant) {
  Build(1);
  auto count = std::make_shared<int>(0);
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Compute(0)
                                 .Sleep(0)
                                 .Call([count](ScriptEnv&) { ++*count; })
                                 .Compute(Milliseconds(1))
                                 .Build(),
                             Rng(1));
  SimThread* t = machine_->Spawn(std::move(spec), nullptr);
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(*count, 1);
  EXPECT_EQ(t->state(), ThreadState::kDead);
}

TEST_P(MachineEdgeTest, ManyThreadsOnOneCoreAllFinish) {
  Build(1);
  std::vector<SimThread*> threads;
  for (int i = 0; i < 100; ++i) {
    ThreadSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.body = MakeScriptBody(ScriptBuilder()
                                   .Loop(5)
                                   .Compute(Milliseconds(1))
                                   .Sleep(Milliseconds(1))
                                   .EndLoop()
                                   .Build(),
                               Rng(i + 1));
    threads.push_back(machine_->Spawn(std::move(spec), nullptr));
  }
  engine_.RunUntil(Seconds(30));
  for (SimThread* t : threads) {
    EXPECT_EQ(t->state(), ThreadState::kDead) << t->name();
    EXPECT_NEAR(ToSeconds(t->total_runtime), 0.005, 0.001) << t->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, MachineEdgeTest, ::testing::Values("cfs", "ule"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace schedbattle
