// Metrics tests: histogram percentiles, time series, heatmap balance
// detection, CSV output, counter formatting.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

#include "src/cfs/cfs_sched.h"
#include "src/metrics/counters.h"
#include "src/metrics/csv.h"
#include "src/metrics/heatmap.h"
#include "src/metrics/histogram.h"
#include "src/metrics/timeseries.h"
#include "src/workload/script.h"

namespace schedbattle {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ExactStatistics) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(Milliseconds(i));
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(Milliseconds(1) + Milliseconds(100)) / 2);
  EXPECT_EQ(h.min(), Milliseconds(1));
  EXPECT_EQ(h.max(), Milliseconds(100));
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), static_cast<double>(Milliseconds(50)),
              static_cast<double>(Milliseconds(2)));
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), static_cast<double>(Milliseconds(99)),
              static_cast<double>(Milliseconds(2)));
  EXPECT_EQ(h.Percentile(0), Milliseconds(1));
  EXPECT_EQ(h.Percentile(100), Milliseconds(100));
}

TEST(HistogramTest, PercentileEdgeCasesAreClamped) {
  LatencyHistogram h;
  for (int i = 1; i <= 10; ++i) {
    h.Record(i);
  }
  // Out-of-range and non-finite p clamp to the extremes instead of indexing
  // out of bounds (casting NaN/negative doubles to size_t is UB).
  EXPECT_EQ(h.Percentile(-5), 1);
  EXPECT_EQ(h.Percentile(0), 1);
  EXPECT_EQ(h.Percentile(100), 10);
  EXPECT_EQ(h.Percentile(250), 10);
  EXPECT_EQ(h.Percentile(std::nan("")), 1);
  EXPECT_EQ(h.Percentile(std::numeric_limits<double>::infinity()), 10);
  // Nearest-rank: p just above a rank boundary selects the next sample.
  EXPECT_EQ(h.Percentile(10), 1);
  EXPECT_EQ(h.Percentile(10.001), 2);
  EXPECT_EQ(h.Percentile(90), 9);
  EXPECT_EQ(h.Percentile(99.9), 10);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.Record(Microseconds(7));
  for (double p : {-1.0, 0.0, 0.1, 50.0, 99.0, 99.9, 100.0, 1000.0}) {
    EXPECT_EQ(h.Percentile(p), Microseconds(7)) << "p=" << p;
  }
  EXPECT_EQ(h.Sum(), Microseconds(7));
}

TEST(HistogramTest, P999TracksTheTailOnLargeSampleCounts) {
  LatencyHistogram h;
  for (int i = 1; i <= 999; ++i) {
    h.Record(i);
  }
  // With n < 1000, ceil(0.999 * n) == n: p999 is still the max.
  EXPECT_EQ(h.Percentile(99.9), 999);
  for (int i = 1000; i <= 2000; ++i) {
    h.Record(i);
  }
  // n == 2000: rank ceil(0.999 * 2000) == 1999, so p999 steps off the max.
  EXPECT_EQ(h.Percentile(99.9), 1999);
  EXPECT_EQ(h.Percentile(100), 2000);
  EXPECT_EQ(h.Sum(), SimDuration{2000} * 2001 / 2);
}

TEST(HistogramTest, InterleavedRecordAndQuery) {
  LatencyHistogram h;
  h.Record(10);
  EXPECT_EQ(h.Percentile(50), 10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.Percentile(50), 20);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
}

// ---- bounded storage: log-bucketed spill past the exact-mode cap ----

TEST(HistogramTest, StaysExactUpToTheSampleCap) {
  LatencyHistogram h;
  for (uint64_t i = 0; i < LatencyHistogram::kExactSampleCap; ++i) {
    h.Record(static_cast<SimDuration>(i + 1));
  }
  EXPECT_TRUE(h.exact());
  // Nearest-rank on 1..cap is exact to the sample.
  EXPECT_EQ(h.Percentile(50), static_cast<SimDuration>(LatencyHistogram::kExactSampleCap / 2));
}

TEST(HistogramTest, SpillKeepsScalarStatisticsExact) {
  LatencyHistogram h;
  const uint64_t n = 4 * LatencyHistogram::kExactSampleCap;
  SimDuration sum = 0;
  // Deterministic spread over ~4 decades (splitmix-style mixer).
  uint64_t x = 12345;
  for (uint64_t i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    const SimDuration v = static_cast<SimDuration>(1000 + z % 10000000);
    h.Record(v);
    sum += v;
  }
  EXPECT_FALSE(h.exact());
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.Sum(), sum);
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(sum) / static_cast<double>(n));
  EXPECT_GE(h.min(), 1000);
  EXPECT_LT(h.max(), 10001000);
}

TEST(HistogramTest, SpilledPercentilesStayWithinTheDocumentedBound) {
  LatencyHistogram bounded;
  std::vector<SimDuration> all;
  uint64_t x = 777;
  const uint64_t n = 3 * LatencyHistogram::kExactSampleCap;
  for (uint64_t i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    const SimDuration v = static_cast<SimDuration>(1 + z % 50000000);
    bounded.Record(v);
    all.push_back(v);
  }
  ASSERT_FALSE(bounded.exact());
  std::sort(all.begin(), all.end());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(all.size())));
    const double ref = static_cast<double>(all[rank == 0 ? 0 : rank - 1]);
    const double got = static_cast<double>(bounded.Percentile(p));
    // 32 sub-buckets per octave: <= ~3.2% relative error (1/32 of a octave
    // width plus rank quantization) — the bound documented in histogram.h.
    EXPECT_NEAR(got, ref, 0.04 * ref) << "p=" << p;
  }
}

TEST(HistogramTest, ClearResetsSpillMode) {
  LatencyHistogram h;
  for (uint64_t i = 0; i < 2 * LatencyHistogram::kExactSampleCap; ++i) {
    h.Record(static_cast<SimDuration>(i + 1));
  }
  ASSERT_FALSE(h.exact());
  h.Clear();
  EXPECT_TRUE(h.exact());
  EXPECT_EQ(h.count(), 0u);
  h.Record(42);
  EXPECT_EQ(h.Percentile(99), 42);
}

TEST(TimeSeriesTest, ValueAtStepHold) {
  TimeSeries s("x");
  s.Push(Seconds(1), 10);
  s.Push(Seconds(3), 30);
  EXPECT_EQ(s.ValueAt(Milliseconds(500)), 0.0);
  EXPECT_EQ(s.ValueAt(Seconds(1)), 10.0);
  EXPECT_EQ(s.ValueAt(Seconds(2)), 10.0);
  EXPECT_EQ(s.ValueAt(Seconds(5)), 30.0);
}

TEST(TimeSeriesTest, PeriodicSamplerFiresAtPeriod) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  machine.Boot();
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(2)).Build(), Rng(1));
  machine.Spawn(std::move(spec), nullptr);
  std::vector<SimTime> fired;
  PeriodicSampler sampler(&machine, Milliseconds(100), [&](SimTime t) { fired.push_back(t); });
  engine.RunUntil(Seconds(1));
  sampler.Stop();
  ASSERT_GE(fired.size(), 9u);
  EXPECT_EQ(fired[0], Milliseconds(100));
  EXPECT_EQ(fired[1], Milliseconds(200));
  const size_t n = fired.size();
  engine.RunUntil(Seconds(2));
  EXPECT_EQ(fired.size(), n) << "stopped sampler must not fire";
}

TEST(CsvTest, SeriesMergedOnUnionOfTimes) {
  TimeSeries a("a"), b("b");
  a.Push(Seconds(1), 1);
  a.Push(Seconds(2), 2);
  b.Push(Seconds(2), 20);
  const std::string csv = SeriesToCsv({&a, &b});
  EXPECT_NE(csv.find("time_s,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1,1,0"), std::string::npos);
  EXPECT_NE(csv.find("2,2,20"), std::string::npos);
}

TEST(HeatmapTest, TracksRunnableCounts) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  machine.Boot();
  for (int i = 0; i < 4; ++i) {
    ThreadSpec spec;
    spec.name = "t";
    spec.affinity = CpuMask::Single(i % 2);
    spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(2)).Build(), Rng(i + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  CoreLoadHeatmap heatmap(&machine, Milliseconds(100));
  engine.RunUntil(Seconds(1));
  heatmap.Stop();
  ASSERT_GT(heatmap.num_samples(), 5);
  const auto counts = heatmap.CountsAt(Milliseconds(500));
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_GE(heatmap.TimeToBalance(0), 0) << "2/2 is balanced";
  EXPECT_FALSE(heatmap.RenderAscii().empty());
  EXPECT_NE(heatmap.ToCsv().find("core0,core1"), std::string::npos);
}

TEST(HeatmapTest, TimeToBalanceDetectsImbalance) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<CfsScheduler>());
  machine.Boot();
  // Both threads pinned to core 0: never balanced at tolerance 1.
  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "t";
    spec.affinity = CpuMask::Single(0);
    spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(2)).Build(), Rng(i + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  CoreLoadHeatmap heatmap(&machine, Milliseconds(100));
  engine.RunUntil(Seconds(1));
  heatmap.Stop();
  EXPECT_EQ(heatmap.TimeToBalance(1), -1);
}

TEST(CountersTest, FormatMentionsAllSections) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  machine.Boot();
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(
      ScriptBuilder().Loop(5).Compute(Milliseconds(1)).Sleep(Milliseconds(1)).EndLoop().Build(),
      Rng(1));
  machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Seconds(1));
  const std::string s = FormatCounters(machine);
  for (const char* key : {"context switches", "wakeups", "migrations", "sched overhead"}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST(CsvTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/schedbattle_csv_test.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
}

}  // namespace
}  // namespace schedbattle
