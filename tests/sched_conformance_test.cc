// Scheduler-class conformance suite.
//
// Every class in the SchedulerRegistry must honor the same external
// contract, whatever its internal policy: wakeups dispatch onto idle cores,
// forked threads all run and get reaped, renice never breaks work
// conservation, hard affinity is absolute, idle cores eventually take work
// from overloaded ones, the invariant monitors stay silent on the paper's
// figure workloads, and the engine optimizations (tick elision, sharding)
// are byte-invisible. The suite iterates the registry, so a newly
// registered class is conformance-tested without touching this file.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/check/fuzz.h"
#include "src/core/scenarios.h"
#include "src/core/spec.h"
#include "src/sched/machine.h"
#include "src/sched/registry.h"
#include "src/sim/engine.h"
#include "src/workload/script.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

std::vector<SchedKind> AllKinds() { return SchedulerRegistry::Instance().AllKinds(); }

// Drops the "tick_elision" counter line from a schedstats JSON document (the
// one line that legitimately differs between elision on and off).
std::string StripTickElision(const std::string& json) {
  const size_t pos = json.find("\"tick_elision\"");
  if (pos == std::string::npos) {
    return json;
  }
  const size_t line_start = json.rfind('\n', pos) + 1;  // npos+1 == 0
  size_t line_end = json.find('\n', pos);
  line_end = line_end == std::string::npos ? json.size() : line_end + 1;
  return json.substr(0, line_start) + json.substr(line_end);
}

// ---- registry round trips ----

TEST(SchedConformanceTest, RegistryEntriesAreComplete) {
  const SchedulerRegistry& reg = SchedulerRegistry::Instance();
  ASSERT_EQ(static_cast<int>(reg.classes().size()), kNumSchedKinds);
  for (const SchedulerClass& sc : reg.classes()) {
    SCOPED_TRACE(sc.id);
    EXPECT_FALSE(sc.id.empty());
    EXPECT_FALSE(sc.display.empty());
    EXPECT_FALSE(sc.summary.empty());
    EXPECT_FALSE(sc.tunables.empty());
    EXPECT_EQ(sc.id, SchedId(sc.kind));
    EXPECT_EQ(sc.display, SchedName(sc.kind));
    SchedKind parsed;
    ASSERT_TRUE(ParseSchedKind(sc.id, &parsed));
    EXPECT_EQ(parsed, sc.kind);
    ASSERT_EQ(reg.Find(sc.id), &reg.Of(sc.kind));
    std::unique_ptr<Scheduler> sched = sc.make(ExperimentConfig{});
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), sc.id);
  }
  SchedKind unknown;
  EXPECT_FALSE(ParseSchedKind("nosuch", &unknown));
  EXPECT_EQ(reg.Find("nosuch"), nullptr);
}

// ---- wakeup contract ----

// A periodically-waking thread on an otherwise idle machine must be
// dispatched after every wakeup: its 1ms-compute / 5ms-sleep duty cycle
// accumulates ~1/6 of wall time regardless of policy.
TEST(SchedConformanceTest, WakeupsDispatchOntoIdleCores) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(2),
                    MakeScheduler(std::string(SchedId(kind))));
    machine.Boot();
    ThreadSpec spec;
    spec.name = "waker";
    spec.body = MakeScriptBody(ScriptBuilder()
                                   .Loop(-1)
                                   .Compute(Milliseconds(1))
                                   .Sleep(Milliseconds(5))
                                   .EndLoop()
                                   .Build(),
                               Rng(1));
    SimThread* t = machine.Spawn(std::move(spec), nullptr);
    engine.RunUntil(Seconds(1));
    machine.CatchUpTicks();
    const double runtime = ToSeconds(t->RuntimeAt(engine.now()));
    EXPECT_GT(runtime, 0.1) << "woken thread starved on an idle machine";
    EXPECT_LT(runtime, 0.25) << "duty cycle should cap runtime near 1/6";
  }
}

// ---- fork + monitor contract, randomized workloads ----

// Generated fuzz workloads are structurally terminating: under every class,
// every forked thread must run to completion and be reaped, with the full
// MonitorSuite (work conservation, runqueue accounting, lost wakeups, ...)
// silent throughout.
TEST(SchedConformanceTest, FuzzWorkloadsForkRunAndReapCleanly) {
  Rng root(11);
  std::vector<FuzzSpec> base;
  for (int i = 0; i < 3; ++i) {
    Rng stream = root.Split();
    base.push_back(GenerateFuzzSpec(&stream, SchedKind::kCfs, 0.05));
  }
  for (SchedKind kind : AllKinds()) {
    for (const FuzzSpec& b : base) {
      FuzzSpec s = b;
      s.sched = kind;
      SCOPED_TRACE(s.Label());
      ExperimentSpec spec = s.ToExperimentSpec();
      spec.check_invariants = true;
      const RunResult r = ExecuteSpec(spec);
      EXPECT_EQ(r.violations, 0u) << r.violation_report;
      EXPECT_EQ(r.counters.forks, r.counters.exits) << "unreaped forked thread";
      for (const AppResult& app : r.apps) {
        EXPECT_TRUE(app.finished) << app.name << " did not finish";
      }
    }
  }
}

// ---- renice contract ----

// SetNice on running and queued threads must never break work conservation:
// whatever a class does with the hint (CFS reweights, ULE rescores, MLFQ
// deliberately ignores it), two hogs on one core still consume the whole
// core between them.
TEST(SchedConformanceTest, ReniceKeepsTheMachineWorkConserving) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(1),
                    MakeScheduler(std::string(SchedId(kind))));
    machine.Boot();
    SimThread* a = machine.Spawn(Spinner("a", 1), nullptr);
    SimThread* b = machine.Spawn(Spinner("b", 2), nullptr);
    engine.RunUntil(Seconds(1));
    machine.SetNice(b, 10);   // whichever of a/b is queued vs running, both
    machine.SetNice(a, -5);   // paths (ReniceTask on each state) are hit
    engine.RunUntil(Seconds(2));
    machine.CatchUpTicks();
    const double total =
        ToSeconds(a->RuntimeAt(engine.now())) + ToSeconds(b->RuntimeAt(engine.now()));
    EXPECT_NEAR(total, 2.0, 0.05) << "renice must not stall the core";
    EXPECT_GT(machine.counters().context_switches, 0u);
  }
}

// ---- affinity contract ----

// Hard affinity is absolute: pinned threads never run elsewhere, and an
// affinity change to a disjoint mask migrates the thread onto it.
TEST(SchedConformanceTest, AffinityPinningIsAbsolute) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(4),
                    MakeScheduler(std::string(SchedId(kind))));
    machine.Boot();
    std::vector<SimThread*> pinned;
    for (int i = 0; i < 3; ++i) {
      pinned.push_back(machine.Spawn(Spinner("p" + std::to_string(i), i + 1, /*pin=*/2),
                                     nullptr));
    }
    engine.RunUntil(Milliseconds(500));
    machine.CatchUpTicks();
    for (SimThread* t : pinned) {
      EXPECT_EQ(t->cpu(), 2) << "pinned thread ran off its core";
    }
    machine.SetAffinity(pinned[0], CpuMask::Single(0));
    engine.RunUntil(Milliseconds(600));
    machine.CatchUpTicks();
    EXPECT_EQ(pinned[0]->cpu(), 0) << "affinity change did not migrate the thread";
  }
}

// ---- idle-steal / balance contract ----

// The fig6 shape in miniature: spinners pinned to core 0 then released must
// spread — an idle core that can legally take work eventually does, by idle
// steal or periodic balancing (the slowest machinery is ULE's <= 1.5s
// balancer period).
TEST(SchedConformanceTest, IdleCoresTakeReleasedWork) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    SimEngine engine;
    Machine machine(&engine, CpuTopology::Flat(2),
                    MakeScheduler(std::string(SchedId(kind))));
    machine.Boot();
    std::vector<SimThread*> threads;
    for (int i = 0; i < 4; ++i) {
      threads.push_back(
          machine.Spawn(Spinner("s" + std::to_string(i), i + 1, /*pin=*/0), nullptr));
    }
    engine.RunUntil(Milliseconds(200));
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(2));
    }
    engine.RunUntil(Seconds(2) + Milliseconds(200));
    machine.CatchUpTicks();
    const std::vector<int> counts = CountsPerCore(machine, threads);
    EXPECT_GE(counts[1], 1) << "released work never reached the idle core";
    EXPECT_GT(machine.counters().migrations, 0u);
  }
}

// ---- figure workloads under the monitors ----

// Figure 1 (fibo + sysbench, one core) and a Figure 9 style co-scheduled
// multicore run must be monitor-clean for every class.
TEST(SchedConformanceTest, Fig1IsMonitorClean) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    auto out = std::make_shared<FiboSysbenchResult>();
    ExperimentSpec spec = FiboSysbenchSpec(kind, 42, 0.02, out);
    spec.check_invariants = true;
    const RunResult r = ExecuteSpec(spec);
    EXPECT_EQ(r.violations, 0u) << r.violation_report;
    EXPECT_GT(out->sysbench_tps, 0.0);
  }
}

TEST(SchedConformanceTest, Fig9MultiAppIsMonitorClean) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    ExperimentSpec spec = ExperimentSpec::Multicore(kind, 42);
    spec.scale = 0.02;
    spec.horizon = Seconds(30);
    spec.Named("conformance-fig9");
    spec.Add(RegistryApp("apache"));
    spec.Add(RegistryApp("sysbench"));
    spec.check_invariants = true;
    const RunResult r = ExecuteSpec(spec);
    EXPECT_EQ(r.violations, 0u) << r.violation_report;
  }
}

// Figure 6's mid-run unpin floods 14.5s of pinned waiting into the
// work-conservation monitor by construction (see tickless_test.cc), so the
// conformance bar is verdict stability: the monitors must report the exact
// same outcome with elision on and off, and nothing but work conservation
// may fire.
TEST(SchedConformanceTest, Fig6MonitorVerdictsAreElisionInvariant) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    auto out = std::make_shared<LoadBalanceResult>();
    ExperimentSpec spec = LoadBalanceSpec(kind, 42, Seconds(16), 1, out);
    spec.check_invariants = true;
    ExperimentSpec off = spec;
    off.machine.tickless = false;
    const RunResult on = ExecuteSpec(spec);
    const RunResult eager = ExecuteSpec(off);
    EXPECT_EQ(on.violations, eager.violations);
    EXPECT_EQ(on.violation_report, eager.violation_report);
    if (on.violations > 0) {
      EXPECT_EQ(on.first_violation_monitor, "work_conservation");
    }
  }
}

// ---- engine-optimization byte identity ----

// Tick elision is a pure strength reduction for every class: the schedstats
// snapshot (minus the elision counter line), finish time and counters must
// be byte-identical with elision forced off.
TEST(SchedConformanceTest, TicklessElisionIsByteIdentical) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    ExperimentSpec spec = StatsSpec(kind, 42);
    ExperimentSpec off = spec;
    off.machine.tickless = false;
    const RunResult on = ExecuteSpec(spec);
    const RunResult eager = ExecuteSpec(off);
    ASSERT_FALSE(on.schedstats_json.empty());
    EXPECT_EQ(StripTickElision(on.schedstats_json), StripTickElision(eager.schedstats_json));
    EXPECT_EQ(on.finish_time, eager.finish_time);
    EXPECT_EQ(on.counters.context_switches, eager.counters.context_switches);
  }
}

// Shard count is likewise invisible: the same multicore spec at shards
// {1, 2, 4} produces byte-identical schedstats.
TEST(SchedConformanceTest, ShardCountIsByteInvisible) {
  for (SchedKind kind : AllKinds()) {
    SCOPED_TRACE(SchedId(kind));
    ExperimentSpec spec = ExperimentSpec::Multicore(kind, 42);
    spec.scale = 0.02;
    spec.horizon = Seconds(20);
    spec.Named("conformance-shards");
    spec.collect_schedstats = true;
    spec.cfs.group_scheduling = false;  // keep runs parallel-window eligible
    spec.Add(RegistryApp("apache"));
    RunResult serial;
    for (int shards : {1, 2, 4}) {
      ExperimentSpec s = spec;
      s.shards = shards;
      const RunResult r = ExecuteSpec(s);
      ASSERT_FALSE(r.schedstats_json.empty());
      if (shards == 1) {
        serial = r;
        continue;
      }
      EXPECT_EQ(r.schedstats_json, serial.schedstats_json)
          << shards << "-shard run diverged from the single-queue engine";
      EXPECT_EQ(r.finish_time, serial.finish_time);
      EXPECT_EQ(r.counters.migrations, serial.counters.migrations);
    }
  }
}

}  // namespace
}  // namespace schedbattle
