// Determinism: the same ExperimentSpec must produce byte-identical schedstats
// JSON on every execution, and a thread-pool campaign must match a serial one
// exactly. This is the property that makes parallel campaigns trustworthy —
// --jobs only changes wall-clock time, never results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

TEST(DeterminismTest, SameSpecTwiceIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    const RunResult a = ExecuteSpec(StatsSpec(kind, 42));
    const RunResult b = ExecuteSpec(StatsSpec(kind, 42));
    ASSERT_FALSE(a.schedstats_json.empty());
    EXPECT_EQ(a.schedstats_json, b.schedstats_json)
        << "schedstats diverged for " << SchedName(kind);
    EXPECT_EQ(a.finish_time, b.finish_time);
    EXPECT_EQ(a.counters.context_switches, b.counters.context_switches);
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the byte-identity above is not vacuous: a different
  // seed must actually change the run.
  const RunResult a = ExecuteSpec(StatsSpec(SchedKind::kCfs, 42));
  const RunResult b = ExecuteSpec(StatsSpec(SchedKind::kCfs, 43));
  EXPECT_NE(a.schedstats_json, b.schedstats_json);
}

TEST(DeterminismTest, PoolExecutionMatchesSerialByteForByte) {
  std::vector<ExperimentSpec> specs;
  for (uint64_t seed : {42u, 43u, 44u}) {
    specs.push_back(StatsSpec(SchedKind::kCfs, seed));
    specs.push_back(StatsSpec(SchedKind::kUle, seed));
  }
  const std::vector<RunResult> serial = CampaignRunner(1).Run(specs);
  const std::vector<RunResult> pool = CampaignRunner(8).Run(specs);
  ASSERT_EQ(serial.size(), pool.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].schedstats_json, pool[i].schedstats_json)
        << "run " << i << " (" << serial[i].label << ") diverged under the pool";
    EXPECT_EQ(serial[i].finish_time, pool[i].finish_time);
  }
}

}  // namespace
}  // namespace schedbattle
