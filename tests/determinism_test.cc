// Determinism: the same ExperimentSpec must produce byte-identical schedstats
// JSON on every execution, a thread-pool campaign must match a serial one
// exactly, and — since the engine was sharded — the shard count must be
// equally invisible: schedstats, decision logs and monitor verdicts for
// --shards in {1, 2, 4} are compared byte for byte, on figure-shaped specs
// and on a fuzzed corpus, in both tick modes.
//
// Note on regimes: collect_schedstats attaches an observer, which (by design)
// keeps sharded runs on the serialized k-way-merge path. These tests
// therefore pin merge-path identity; the parallel-window path's identity is
// pinned by MachineShardTest in sharding_test.cc, which compares raw machine
// counters without observers attached.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/check/fuzz.h"
#include "src/core/campaign.h"
#include "src/core/scenarios.h"
#include "src/workload/app.h"
#include "src/workload/script.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

TEST(DeterminismTest, SameSpecTwiceIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    const RunResult a = ExecuteSpec(StatsSpec(kind, 42));
    const RunResult b = ExecuteSpec(StatsSpec(kind, 42));
    ASSERT_FALSE(a.schedstats_json.empty());
    EXPECT_EQ(a.schedstats_json, b.schedstats_json)
        << "schedstats diverged for " << SchedName(kind);
    EXPECT_EQ(a.finish_time, b.finish_time);
    EXPECT_EQ(a.counters.context_switches, b.counters.context_switches);
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the byte-identity above is not vacuous: a different
  // seed must actually change the run.
  const RunResult a = ExecuteSpec(StatsSpec(SchedKind::kCfs, 42));
  const RunResult b = ExecuteSpec(StatsSpec(SchedKind::kCfs, 43));
  EXPECT_NE(a.schedstats_json, b.schedstats_json);
}

TEST(DeterminismTest, PoolExecutionMatchesSerialByteForByte) {
  std::vector<ExperimentSpec> specs;
  for (uint64_t seed : {42u, 43u, 44u}) {
    specs.push_back(StatsSpec(SchedKind::kCfs, seed));
    specs.push_back(StatsSpec(SchedKind::kUle, seed));
  }
  const std::vector<RunResult> serial = CampaignRunner(1).Run(specs);
  const std::vector<RunResult> pool = CampaignRunner(8).Run(specs);
  ASSERT_EQ(serial.size(), pool.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].schedstats_json, pool[i].schedstats_json)
        << "run " << i << " (" << serial[i].label << ") diverged under the pool";
    EXPECT_EQ(serial[i].finish_time, pool[i].finish_time);
  }
}

// ---- shard-count invisibility ----

// Builds a fresh spec per execution (scenario specs carry shared output
// objects in their hooks, so one spec value must not be executed twice),
// runs it at shards=1 and at each count in `shard_counts`, and compares
// every externally visible byte.
void ExpectShardInvariant(const std::function<ExperimentSpec()>& build,
                          const std::vector<int>& shard_counts, const std::string& label) {
  ExperimentSpec base = build();
  base.shards = 1;
  const RunResult one = ExecuteSpec(base);
  ASSERT_FALSE(one.schedstats_json.empty()) << label;
  for (int shards : shard_counts) {
    ExperimentSpec spec = build();
    spec.shards = shards;
    const RunResult n = ExecuteSpec(spec);
    const std::string at = label + " shards=" + std::to_string(shards);
    EXPECT_EQ(one.schedstats_json, n.schedstats_json) << at;
    EXPECT_EQ(one.decision_log, n.decision_log) << at;
    EXPECT_EQ(one.finish_time, n.finish_time) << at;
    EXPECT_EQ(one.counters.context_switches, n.counters.context_switches) << at;
    EXPECT_EQ(one.counters.migrations, n.counters.migrations) << at;
    EXPECT_EQ(one.violations, n.violations) << at;
    EXPECT_EQ(one.violation_report, n.violation_report) << at;
  }
}

// Figure 1 shape: fibo + sysbench on one core, schedstats + decision log.
TEST(ShardDeterminismTest, Fig1SpecIsShardInvariant) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    for (bool tickless : {true, false}) {
      auto build = [kind, tickless] {
        auto out = std::make_shared<FiboSysbenchResult>();
        ExperimentSpec spec = FiboSysbenchSpec(kind, 42, 0.02, out);
        spec.collect_schedstats = true;
        spec.collect_decision_log = true;
        spec.machine.tickless = tickless;
        // `out` stays alive through the hooks' captures; the scenario's own
        // on_finish also stops its sampler before the run is torn down.
        return spec;
      };
      ExpectShardInvariant(build, {2, 4},
                           std::string("fig1/") + std::string(SchedName(kind)) +
                               (tickless ? "/tickless" : "/ticking"));
    }
  }
}

// Figure 6 shape, compacted for test runtime: pinned spinners on the paper's
// multicore box, unpinned mid-run so the balancer spreads them across the
// whole machine (and across shard boundaries).
TEST(ShardDeterminismTest, Fig6StyleSpecIsShardInvariant) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    auto build = [kind] {
      ExperimentSpec spec = ExperimentSpec::Multicore(kind, 42);
      spec.system_noise = false;
      spec.horizon = Milliseconds(400);
      spec.Named("fig6-compact");
      spec.collect_schedstats = true;
      spec.collect_decision_log = true;
      AppSpec spinners;
      spinners.name = "spinners";
      spinners.has_metric = true;
      spinners.make = [](int, uint64_t s, double) -> std::unique_ptr<Application> {
        auto app = std::make_unique<ScriptedApp>("spinners", s);
        ScriptedApp::ThreadTemplate tmpl;
        tmpl.name = "spin";
        tmpl.count = 96;
        tmpl.affinity = CpuMask::Single(0);
        tmpl.script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
        app->AddThreads(std::move(tmpl));
        app->set_background(true);
        return app;
      };
      spec.Add(spinners);
      spec.hooks.on_start = [](SpecRunContext& ctx) {
        Machine* m = &ctx.run.machine();
        Application* app = ctx.apps[0];
        ctx.run.engine().PostAt(Milliseconds(50), [m, app] {
          const CpuMask all = CpuMask::AllOf(m->num_cores());
          for (SimThread* t : app->threads()) {
            m->SetAffinity(t, all);
          }
        });
      };
      return spec;
    };
    ExpectShardInvariant(build, {2, 4}, std::string("fig6/") + std::string(SchedName(kind)));
  }
}

// Figure 9 shape: two co-scheduled registry applications on the multicore
// box, with system noise on.
TEST(ShardDeterminismTest, Fig9StyleSpecIsShardInvariant) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    auto build = [kind] {
      ExperimentSpec spec = ExperimentSpec::Multicore(kind, 42);
      spec.scale = 0.02;
      spec.Named("fig9-compact");
      spec.collect_schedstats = true;
      spec.collect_decision_log = true;
      spec.Add(RegistryApp("apache"));
      spec.Add(RegistryApp("gzip"));
      return spec;
    };
    ExpectShardInvariant(build, {2, 4}, std::string("fig9/") + std::string(SchedName(kind)));
  }
}

// A 50-spec fuzzed corpus (25 per scheduler, alternating tick modes, with
// the full MonitorSuite armed): every spec must be byte-identical between
// shards=1 and shards=4, including monitor verdicts.
TEST(ShardDeterminismTest, FuzzCorpusIsShardInvariant) {
  Rng rng(20260809);
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    for (int i = 0; i < 25; ++i) {
      const FuzzSpec fz = GenerateFuzzSpec(&rng, kind, 0.1);
      auto build = [&fz, i] {
        ExperimentSpec spec = fz.ToExperimentSpec();
        spec.collect_schedstats = true;
        spec.collect_decision_log = true;
        spec.machine.tickless = (i % 2) == 0;
        return spec;
      };
      ExpectShardInvariant(build, {4}, fz.Label() + "#" + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace schedbattle
