// Regression tests for the hot-path accounting fixes:
//   - PELT must not drop sub-microsecond remainders under frequent updates.
//   - A copied EventHandle cancelled after the event fired must be a no-op
//     (the old shared-state design corrupted the queue's live count).
//   - ULE's periodic balancer must skip a donor whose queued threads are all
//     pinned away, not abort the whole pass.
//   - The O(1) placement fast paths must be observationally identical to the
//     scans they replace (same decisions, same modeled costs).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cfs/pelt.h"
#include "src/cfs/weights.h"
#include "src/core/spec.h"
#include "src/sim/event_queue.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

TEST(PeltRemainderTest, SubMicrosecondUpdatesCarryOver) {
  // 4000 updates of 256ns each cover 1,024,000ns — less than one PELT period,
  // so no decay is involved and the stepwise walk must accrue exactly the
  // same sums as a single bulk update over the same interval. The old code
  // advanced last_update_time to `now` even when the delta truncated to zero
  // microseconds, so this workload accrued no load at all.
  PeltAvg stepwise;
  PeltAvg bulk;
  const SimDuration step = 256;
  const int n = 4000;
  for (int i = 1; i <= n; ++i) {
    stepwise.Update(i * step, kNice0Load, /*runnable=*/true, /*running=*/true);
  }
  bulk.Update(n * step, kNice0Load, /*runnable=*/true, /*running=*/true);
  EXPECT_GT(bulk.load_sum, 0u);
  EXPECT_EQ(stepwise.load_sum, bulk.load_sum);
  EXPECT_EQ(stepwise.util_sum, bulk.util_sum);
  EXPECT_EQ(stepwise.period_contrib, bulk.period_contrib);
  EXPECT_EQ(stepwise.last_update_time, bulk.last_update_time);
}

TEST(PeltRemainderTest, RemainderSurvivesZeroDeltaUpdate) {
  // An update too small to consume a whole microsecond must leave
  // last_update_time untouched so the sliver is counted next time.
  PeltAvg a;
  a.Update(500, kNice0Load, true, true);  // 500ns: nothing consumed
  EXPECT_EQ(a.last_update_time, 0);
  a.Update(2048, kNice0Load, true, true);  // 2048ns: 2us consumed exactly
  EXPECT_EQ(a.last_update_time, 2048);
  EXPECT_EQ(a.load_sum, 2u);
}

TEST(EventQueueRegressionTest, CancelOfCopiedHandleAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.Schedule(5, [&] { ++fired; });
  EventHandle copy = h;
  SimTime t = 0;
  q.PopNext(&t)();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  // The old design kept per-handle cancellation state, so cancelling through
  // a copy after the fire "succeeded" and pushed live_count_ below zero.
  EXPECT_FALSE(q.Cancel(copy));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // The count must still be coherent: one new event means size() == 1.
  q.Schedule(10, [&] { ++fired; });
  EXPECT_EQ(q.size(), 1u);
  q.PopNext(&t)();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueRegressionTest, CancelOfCopiedHandleAfterCancelIsNoop) {
  EventQueue q;
  EventHandle h = q.Schedule(5, [] {});
  EventHandle copy = h;
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(copy));  // double-count would underflow size()
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueRegressionTest, StaleHandleCannotCancelRecycledNode) {
  // After an event fires its pool node is recycled for the next scheduling;
  // a leftover handle to the old life must not cancel the new event.
  EventQueue q;
  SimTime t = 0;
  EventHandle old = q.Schedule(1, [] {});
  q.PopNext(&t)();
  int fired = 0;
  q.Schedule(2, [&] { ++fired; });  // LIFO freelist: reuses the node
  EXPECT_FALSE(q.Cancel(old));
  EXPECT_EQ(q.size(), 1u);
  q.PopNext(&t)();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueRegressionTest, LargeCallableSurvivesHeapFallback) {
  // Captures over SmallFn's inline buffer take the heap path; make sure it
  // round-trips through schedule/pop intact.
  EventQueue q;
  std::vector<int> payload(64, 7);
  int sum = 0;
  q.Schedule(1, [payload, big = payload, &sum] {
    for (int v : payload) {
      sum += v;
    }
    for (int v : big) {
      sum += v;
    }
  });
  SimTime t = 0;
  q.PopNext(&t)();
  EXPECT_EQ(sum, 2 * 64 * 7);
}

TEST(UleBalanceRegressionTest, PinnedDonorDoesNotAbortBalancePass) {
  // Core 0 carries the highest load but everything queued there is pinned to
  // core 0, so StealOne(0, ...) always fails. The old balancer `break`ed out
  // of the whole pass at that point and never relieved core 1, whose surplus
  // threads are free to move. The fixed balancer retires core 0 as a donor
  // and keeps going.
  SimEngine engine;
  UleTunables tun;
  tun.balance_min = Milliseconds(100);
  tun.balance_max = Milliseconds(100);  // deterministic period
  tun.steal_enabled = false;            // isolate the periodic balancer
  Machine machine(&engine, CpuTopology::Flat(4), std::make_unique<UleScheduler>(tun));
  machine.Boot();
  for (int i = 0; i < 3; ++i) {
    machine.Spawn(Spinner("pinned" + std::to_string(i), i + 1, 0), nullptr);
  }
  std::vector<SimThread*> movable;
  machine.Spawn(Spinner("anchor", 10, 1), nullptr);
  for (int i = 0; i < 2; ++i) {
    movable.push_back(machine.Spawn(Spinner("free" + std::to_string(i), 20 + i, 1), nullptr));
  }
  engine.At(Milliseconds(10), [&] {
    CpuMask mask;
    for (CoreId c = 1; c < 4; ++c) {
      mask.Set(c);
    }
    for (SimThread* t : movable) {
      machine.SetAffinity(t, mask);
    }
  });
  // Loads at the first balance window: core0=3 (all pinned), core1=3 (two
  // movable), cores 2-3 idle. Run past a couple of windows.
  engine.RunUntil(Milliseconds(350));
  EXPECT_GE(machine.counters().migrations, 1u)
      << "balancer gave up at the pinned donor instead of skipping it";
  const auto counts = CountsPerCore(machine, movable);
  EXPECT_GE(counts[2] + counts[3], 1) << "core 1's surplus never moved";
}

// The fast placement paths (idle-core masks, zero-load masks, pinned-thread
// popcount) are pure strength reductions: every decision, every scanned-core
// count and every modeled overhead charge must match the replaced scans
// exactly. Schedstats snapshots capture all of it, so byte-identity across
// the toggle is the whole proof.
TEST(FastPathEquivalenceTest, FastAndScanPathsAreByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    ExperimentSpec fast = ExperimentSpec::Multicore(kind, 42);
    fast.scale = 0.02;
    fast.horizon = Seconds(30);
    fast.collect_schedstats = true;
    fast.Named("fastpath");
    fast.Add(RegistryApp("apache"));
    ExperimentSpec scan = fast;
    scan.cfs.placement_fast_path = false;
    scan.ule.placement_fast_path = false;

    const RunResult a = ExecuteSpec(fast);
    const RunResult b = ExecuteSpec(scan);
    ASSERT_FALSE(a.schedstats_json.empty());
    EXPECT_EQ(a.schedstats_json, b.schedstats_json)
        << "fast path diverged from scan path for " << SchedName(kind);
    EXPECT_EQ(a.finish_time, b.finish_time);
    EXPECT_EQ(a.counters.context_switches, b.counters.context_switches);
    EXPECT_EQ(a.counters.pickcpu_scans, b.counters.pickcpu_scans);
    EXPECT_EQ(a.counters.migrations, b.counters.migrations);
  }
}

}  // namespace
}  // namespace schedbattle
