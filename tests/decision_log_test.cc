// DecisionLog tests: capture coverage across all eight record types, JSONL
// schema (header line + fixed key order, parseable by a real JSON parser),
// exact binary round-trips, and the determinism contract — the decision log
// is part of the byte-identical replay guarantee, serial or pooled, with
// tick elision on or off.
#include "src/metrics/decision_log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "tests/minijson.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

// StatsSpec with the decision log attached.
ExperimentSpec LogSpec(SchedKind kind, uint64_t seed) {
  ExperimentSpec spec = StatsSpec(kind, seed);
  spec.collect_decision_log = true;
  return spec;
}

// A tiny two-core run driven directly, so the log observes migrations and
// balance passes too.
struct DirectRun {
  SimEngine engine;
  Machine machine;
  DecisionLog log;

  explicit DirectRun(const std::string& sched)
      : machine(&engine, CpuTopology::Flat(2), MakeScheduler(sched)), log(&machine) {
    machine.Boot();
  }
};

TEST(DecisionLogTest, CapturesLifecycleAndDecisionRecords) {
  for (const char* sched : {"cfs", "ule"}) {
    DirectRun run(sched);
    for (int i = 0; i < 4; ++i) {
      ThreadSpec spec;
      spec.name = "w" + std::to_string(i);
      spec.body = MakeScriptBody(ScriptBuilder()
                                     .Loop(10)
                                     .Compute(Microseconds(500))
                                     .Sleep(Microseconds(300))
                                     .EndLoop()
                                     .Build(),
                                 Rng(i + 1));
      run.machine.Spawn(std::move(spec), nullptr);
    }
    run.engine.RunUntil(Milliseconds(100));
    run.log.Detach();

    ASSERT_GT(run.log.size(), 0u) << sched;
    int counts[8] = {0};
    for (size_t i = 0; i < run.log.size(); ++i) {
      counts[static_cast<int>(run.log.at(i).type)]++;
    }
    EXPECT_GT(counts[static_cast<int>(DecisionRecord::Type::kDispatch)], 0) << sched;
    EXPECT_GT(counts[static_cast<int>(DecisionRecord::Type::kDeschedule)], 0) << sched;
    EXPECT_GT(counts[static_cast<int>(DecisionRecord::Type::kWake)], 0) << sched;
    EXPECT_GT(counts[static_cast<int>(DecisionRecord::Type::kFork)], 0) << sched;
    EXPECT_GT(counts[static_cast<int>(DecisionRecord::Type::kPick)], 0) << sched;
    // Every fork and wake goes through a pick, so picks >= forks + wakes - 1.
    EXPECT_GE(counts[static_cast<int>(DecisionRecord::Type::kPick)],
              counts[static_cast<int>(DecisionRecord::Type::kFork)]);
  }
}

TEST(DecisionLogTest, PickRecordsCarryFeatureVectors) {
  DirectRun run("cfs");
  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "w";
    spec.body = MakeScriptBody(
        ScriptBuilder().Loop(5).Compute(Microseconds(400)).Sleep(Microseconds(200)).EndLoop().Build(),
        Rng(i + 1));
    run.machine.Spawn(std::move(spec), nullptr);
  }
  run.engine.RunUntil(Milliseconds(50));
  run.log.Detach();

  int picks_with_features = 0;
  for (size_t i = 0; i < run.log.size(); ++i) {
    const DecisionRecord& r = run.log.at(i);
    if (r.type != DecisionRecord::Type::kPick) {
      continue;
    }
    // The observer was attached for the whole run, so every pick must carry
    // the feature block: a valid chosen-core runqueue depth and idle mask.
    EXPECT_GE(r.pick.chosen_rq, 0) << "record " << i;
    EXPECT_LT(r.pick.idle_mask, uint64_t{1} << run.machine.num_cores());
    ++picks_with_features;
  }
  EXPECT_GT(picks_with_features, 0);
}

TEST(DecisionLogTest, JsonlHasHeaderAndParseableRecords) {
  const RunResult r = ExecuteSpec(LogSpec(SchedKind::kUle, 42));
  ASSERT_FALSE(r.decision_log.empty());

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < r.decision_log.size()) {
    const size_t nl = r.decision_log.find('\n', start);
    ASSERT_NE(nl, std::string::npos);  // every line newline-terminated
    lines.push_back(r.decision_log.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_GT(lines.size(), 1u);

  const minijson::Value header = minijson::Parser(lines[0]).Parse();
  EXPECT_EQ(header.at("type").as_string(), "header");
  EXPECT_EQ(header.at("schema").as_number(), 1);
  EXPECT_EQ(header.at("scheduler").as_string(), "ule");
  EXPECT_EQ(header.at("num_cores").as_number(), 1);
  EXPECT_EQ(header.at("seed").as_number(), 42);
  EXPECT_EQ(static_cast<size_t>(header.at("records").as_number()), lines.size() - 1);

  bool saw_pick = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    const minijson::Value rec = minijson::Parser(lines[i]).Parse();
    const std::string type = rec.at("type").as_string();
    EXPECT_GE(rec.at("t").as_number(), 0.0);
    if (type == "pick") {
      saw_pick = true;
      EXPECT_TRUE(rec.contains("tid"));
      EXPECT_TRUE(rec.contains("chosen"));
      EXPECT_TRUE(rec.contains("kind"));
      EXPECT_TRUE(rec.contains("reason"));
      EXPECT_TRUE(rec.contains("chosen_rq"));
      EXPECT_TRUE(rec.contains("sched_key"));
      EXPECT_TRUE(rec.contains("idle_mask"));
    }
  }
  EXPECT_TRUE(saw_pick);
}

TEST(DecisionLogTest, BinaryRoundTripIsExact) {
  for (const char* sched : {"cfs", "ule"}) {
    DirectRun run(sched);
    for (int i = 0; i < 4; ++i) {
      ThreadSpec spec;
      spec.name = "w";
      spec.body = MakeScriptBody(ScriptBuilder()
                                     .Loop(8)
                                     .Compute(Microseconds(600))
                                     .Sleep(Microseconds(400))
                                     .EndLoop()
                                     .Build(),
                                 Rng(i + 3));
      run.machine.Spawn(std::move(spec), nullptr);
    }
    run.engine.RunUntil(Milliseconds(80));
    run.log.Detach();
    ASSERT_GT(run.log.size(), 0u);

    const std::vector<uint8_t> bytes = run.log.ToBinary();
    ParsedDecisionLog parsed;
    ASSERT_TRUE(DecisionLog::ParseBinary(bytes, &parsed)) << sched;
    EXPECT_EQ(parsed.header.schema, run.log.Header().schema);
    EXPECT_EQ(parsed.header.scheduler, run.log.Header().scheduler);
    EXPECT_EQ(parsed.header.num_cores, run.log.Header().num_cores);
    EXPECT_EQ(parsed.header.seed, run.log.Header().seed);
    ASSERT_EQ(parsed.records.size(), run.log.size());
    for (size_t i = 0; i < parsed.records.size(); ++i) {
      const DecisionRecord& a = run.log.at(i);
      const DecisionRecord& b = parsed.records[i];
      ASSERT_EQ(a.t, b.t) << "record " << i;
      ASSERT_EQ(a.type, b.type) << "record " << i;
      switch (a.type) {
        case DecisionRecord::Type::kPick:
          EXPECT_EQ(a.pick.thread, b.pick.thread);
          EXPECT_EQ(a.pick.chosen, b.pick.chosen);
          EXPECT_EQ(a.pick.chosen_rq, b.pick.chosen_rq);
          EXPECT_EQ(a.pick.sched_key, b.pick.sched_key);
          EXPECT_EQ(a.pick.idle_mask, b.pick.idle_mask);
          break;
        case DecisionRecord::Type::kBalance:
          EXPECT_EQ(a.balance.threads_moved, b.balance.threads_moved);
          EXPECT_EQ(a.balance.src, b.balance.src);
          break;
        case DecisionRecord::Type::kPreempt:
          EXPECT_EQ(a.preempt.preemptor, b.preempt.preemptor);
          EXPECT_EQ(a.preempt.fired, b.preempt.fired);
          break;
        default:
          EXPECT_EQ(a.life.thread, b.life.thread);
          EXPECT_EQ(a.life.core, b.life.core);
          EXPECT_EQ(a.life.reason, b.life.reason);
          break;
      }
    }
    // A corrupted length must be rejected, not crash.
    std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 3);
    ParsedDecisionLog scratch;
    EXPECT_FALSE(DecisionLog::ParseBinary(truncated, &scratch));
  }
}

TEST(DecisionLogDeterminismTest, SameSpecTwiceIsByteIdentical) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    const RunResult a = ExecuteSpec(LogSpec(kind, 42));
    const RunResult b = ExecuteSpec(LogSpec(kind, 42));
    ASSERT_FALSE(a.decision_log.empty());
    EXPECT_EQ(a.decision_log, b.decision_log) << "log diverged for " << SchedName(kind);
  }
}

TEST(DecisionLogDeterminismTest, DifferentSeedsDiverge) {
  const RunResult a = ExecuteSpec(LogSpec(SchedKind::kCfs, 42));
  const RunResult b = ExecuteSpec(LogSpec(SchedKind::kCfs, 43));
  EXPECT_NE(a.decision_log, b.decision_log);
}

TEST(DecisionLogDeterminismTest, PoolExecutionMatchesSerialByteForByte) {
  std::vector<ExperimentSpec> specs;
  for (uint64_t seed : {42u, 43u, 44u}) {
    specs.push_back(LogSpec(SchedKind::kCfs, seed));
    specs.push_back(LogSpec(SchedKind::kUle, seed));
  }
  const std::vector<RunResult> serial = CampaignRunner(1).Run(specs);
  const std::vector<RunResult> pool = CampaignRunner(8).Run(specs);
  ASSERT_EQ(serial.size(), pool.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].decision_log, pool[i].decision_log)
        << "run " << i << " (" << serial[i].label << ") diverged under the pool";
  }
}

// Tick elision is delivery-only: the record stream (everything after the
// header line, which carries the tickless flag) must be identical with
// elision on and off.
TEST(DecisionLogDeterminismTest, TicklessOnAndOffProduceSameRecordStream) {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    ExperimentSpec on = LogSpec(kind, 42);
    ExperimentSpec off = on;
    off.machine.tickless = false;
    const RunResult a = ExecuteSpec(on);
    const RunResult b = ExecuteSpec(off);
    const auto strip = [](const std::string& jsonl) {
      const size_t nl = jsonl.find('\n');
      return nl == std::string::npos ? std::string() : jsonl.substr(nl + 1);
    };
    ASSERT_FALSE(a.decision_log.empty());
    if (TicklessEnabled()) {
      // Headers differ in the tickless flag; with the process-wide kill
      // switch off (SCHEDBATTLE_TICKLESS=off) both runs are eager and the
      // logs are fully identical instead.
      EXPECT_NE(a.decision_log, b.decision_log);
    }
    EXPECT_EQ(strip(a.decision_log), strip(b.decision_log))
        << "decision records changed under tick elision for " << SchedName(kind);
  }
}

}  // namespace
}  // namespace schedbattle
