// Minimal recursive-descent JSON parser for validating exporter output in
// tests (schedstats ToJson, SchedTrace ToChromeJson). Parses the full JSON
// grammar into a small variant tree; throws std::runtime_error with a byte
// offset on malformed input. Not a production parser — no streaming, no
// \uXXXX decoding beyond pass-through — just enough to prove the exporters
// emit well-formed JSON and to query values in assertions.
#ifndef TESTS_MINIJSON_H_
#define TESTS_MINIJSON_H_

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace minijson {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), num_(d) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a) : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool as_bool() const {
    Expect(Type::kBool);
    return bool_;
  }
  double as_number() const {
    Expect(Type::kNumber);
    return num_;
  }
  const std::string& as_string() const {
    Expect(Type::kString);
    return str_;
  }
  const Array& as_array() const {
    Expect(Type::kArray);
    return *arr_;
  }
  const Object& as_object() const {
    Expect(Type::kObject);
    return *obj_;
  }

  // Object member access; throws if absent or not an object.
  const Value& at(const std::string& key) const {
    const Object& o = as_object();
    auto it = o.find(key);
    if (it == o.end()) {
      throw std::runtime_error("minijson: missing key '" + key + "'");
    }
    return it->second;
  }
  bool contains(const std::string& key) const {
    return is_object() && obj_->count(key) > 0;
  }

 private:
  void Expect(Type t) const {
    if (type_ != t) {
      throw std::runtime_error("minijson: wrong type access");
    }
  }

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value Parse() {
    Value v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters");
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("minijson: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char Next() {
    const char c = Peek();
    ++pos_;
    return c;
  }

  void Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("bad literal");
    }
    pos_ += word.size();
  }

  Value ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return Value(ParseString());
      case 't':
        Literal("true");
        return Value(true);
      case 'f':
        Literal("false");
        return Value(false);
      case 'n':
        Literal("null");
        return Value();
      default:
        return ParseNumber();
    }
  }

  std::string ParseString() {
    if (Next() != '"') {
      Fail("expected '\"'");
    }
    std::string out;
    while (true) {
      const char c = Next();
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        const char esc = Next();
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            // Keep \uXXXX escapes verbatim; tests never need them decoded.
            out += "\\u";
            for (int i = 0; i < 4; ++i) {
              const char h = Next();
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                Fail("bad \\u escape");
              }
              out += h;
            }
            break;
          }
          default:
            Fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  Value ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    auto digits = [&] {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("expected digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    return Value(std::stod(std::string(text_.substr(start, pos_ - start))));
  }

  Value ParseArray() {
    Next();  // '['
    Array arr;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(ParseValue());
      SkipWs();
      const char c = Next();
      if (c == ']') {
        return Value(std::move(arr));
      }
      if (c != ',') {
        Fail("expected ',' or ']'");
      }
    }
  }

  Value ParseObject() {
    Next();  // '{'
    Object obj;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      if (Next() != ':') {
        Fail("expected ':'");
      }
      obj[std::move(key)] = ParseValue();
      SkipWs();
      const char c = Next();
      if (c == '}') {
        return Value(std::move(obj));
      }
      if (c != ',') {
        Fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline Value Parse(std::string_view text) { return Parser(text).Parse(); }

}  // namespace minijson

#endif  // TESTS_MINIJSON_H_
