// Sharded-engine tests: ShardPlan shapes, tie ordering on the serialized
// k-way merge, and byte-identity of machine execution across shard counts —
// including runs where the parallel-window path provably engaged.
//
// The engine's contract is that shard count is invisible to the simulation:
// every counter and every thread's final placement must match the
// single-queue engine exactly. The tests here drive the Machine directly; the
// spec-level legs (schedstats JSON, decision logs, fuzzed workloads) live in
// determinism_test.cc.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/sched/machine.h"
#include "src/sim/engine.h"
#include "src/sim/shard.h"
#include "src/topo/topology.h"
#include "src/workload/script.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

// ---- ShardPlan shapes ----

TEST(ShardPlanTest, WordAlignedWhenEveryShardOwnsAWord) {
  const ShardPlan plan = ShardPlan::Contiguous(128, 2);
  ASSERT_EQ(plan.num_shards(), 2);
  EXPECT_TRUE(plan.word_aligned());
  EXPECT_EQ(plan.begin[0], 0);
  EXPECT_EQ(plan.end[0], 64);
  EXPECT_EQ(plan.begin[1], 64);
  EXPECT_EQ(plan.end[1], 128);
  EXPECT_EQ(plan.shard_of[63], 0);
  EXPECT_EQ(plan.shard_of[64], 1);
}

TEST(ShardPlanTest, BigBoxSplitsIntoEqualWordRuns) {
  const ShardPlan plan = ShardPlan::Contiguous(1024, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  EXPECT_TRUE(plan.word_aligned());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.begin[s], s * 256);
    EXPECT_EQ(plan.end[s], (s + 1) * 256);
  }
}

TEST(ShardPlanTest, SmallBoxFallsBackToPerCoreSplit) {
  // 8 cores / 4 shards: only one mask word, so alignment is impossible; the
  // plan still covers every core exactly once and reports !word_aligned().
  const ShardPlan plan = ShardPlan::Contiguous(8, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  EXPECT_FALSE(plan.word_aligned());
  int covered = 0;
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.end[s] - plan.begin[s], 2);
    for (int c = plan.begin[s]; c < plan.end[s]; ++c) {
      EXPECT_EQ(plan.shard_of[c], s);
      ++covered;
    }
  }
  EXPECT_EQ(covered, 8);
}

TEST(ShardPlanTest, RaggedTailStaysWithLastShard) {
  // 100 cores / 2 shards: 2 words, one per shard; the second shard owns the
  // 36-core tail of the ragged word.
  const ShardPlan plan = ShardPlan::Contiguous(100, 2);
  EXPECT_TRUE(plan.word_aligned());
  EXPECT_EQ(plan.end[0], 64);
  EXPECT_EQ(plan.end[1], 100);
}

TEST(ShardPlanTest, ClampsShardCountToCores) {
  const ShardPlan plan = ShardPlan::Contiguous(2, 8);
  EXPECT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(ShardPlan::Contiguous(4, 0).num_shards(), 1);
}

// ---- serialized k-way merge: tie order == single-queue order ----

// Same-timestamp events from mixed lanes (global via At, two different shard
// lanes via AtCore/PostAtCore) must execute in insertion order, exactly as a
// single queue would. The shared seq counter across lanes is what makes the
// k-way merge a refinement of the single-queue order rather than "some"
// time-sorted order.
TEST(EngineShardTest, SerializedMergePreservesSingleQueueTieOrder) {
  auto run = [](bool sharded) {
    SimEngine engine;
    if (sharded) {
      engine.ConfigureShards(ShardPlan::Contiguous(128, 2));
    }
    std::vector<std::string> order;
    const SimTime t = Milliseconds(1);
    engine.At(t, [&order] { order.push_back("global-a"); });
    engine.AtCore(100, t, [&order] { order.push_back("core100-a"); });
    engine.AtCore(5, t, [&order] { order.push_back("core5-a"); });
    engine.At(t, [&order] { order.push_back("global-b"); });
    engine.PostAtCore(100, t, [&order] { order.push_back("core100-b"); });
    engine.PostAtCore(5, t, [&order] { order.push_back("core5-b"); });
    // A later same-lane event scheduled first must still run after all of
    // the t-ties regardless of lane.
    engine.AtCore(64, t + 1, [&order] { order.push_back("core64-late"); });
    engine.RunUntil(Milliseconds(2));
    return order;
  };
  const std::vector<std::string> expected = {"global-a",  "core100-a", "core5-a",
                                             "global-b",  "core100-b", "core5-b",
                                             "core64-late"};
  EXPECT_EQ(run(false), expected);
  EXPECT_EQ(run(true), expected);
}

// ---- machine-level byte-identity across shard counts ----

struct RunResult {
  MachineCounters counters;
  TickElisionCounters elision;
  uint64_t events = 0;
  SimEngine::WindowStats windows;
  std::vector<int> cpus;  // final cpu() of each tracked thread
};

using WorkloadFn = std::function<std::vector<SimThread*>(Machine&, SimEngine&)>;

RunResult RunWorkload(const std::string& sched, int cores, int shards, bool tickless,
                      SimTime until, const WorkloadFn& build) {
  SimEngine engine;
  if (shards > 1) {
    engine.ConfigureShards(ShardPlan::Contiguous(cores, shards));
  }
  MachineParams params;
  params.tickless = tickless;
  Machine machine(&engine, CpuTopology::Flat(cores), MakeScheduler(sched), params);
  machine.Boot();
  std::vector<SimThread*> tracked = build(machine, engine);
  engine.RunUntil(until);
  // Settle tick accounting: elided ticks pending replay at the deadline are
  // drained at context-dependent points, so snapshot only after catching up
  // (exactly what the spec-level result harvest does).
  machine.CatchUpTicks();
  RunResult r;
  r.counters = machine.counters();
  r.elision = machine.tick_elision();
  r.events = engine.events_executed();
  r.windows = engine.window_stats();
  for (SimThread* t : tracked) {
    r.cpus.push_back(t->cpu());
  }
  return r;
}

// Every modeled quantity must match exactly. TickElisionCounters::
// batch_updates is deliberately NOT compared: catch-up batching is scoped to
// the draining context, so the same elided ticks may be replayed in a
// different number of batches under different shard counts — while the
// modeled effects (ticks_fired + ticks_elided) stay identical.
void ExpectIdenticalRuns(const RunResult& a, const RunResult& b, const std::string& label) {
  EXPECT_EQ(a.counters.context_switches, b.counters.context_switches) << label;
  EXPECT_EQ(a.counters.wakeup_preemptions, b.counters.wakeup_preemptions) << label;
  EXPECT_EQ(a.counters.tick_preemptions, b.counters.tick_preemptions) << label;
  EXPECT_EQ(a.counters.migrations, b.counters.migrations) << label;
  EXPECT_EQ(a.counters.wakeups, b.counters.wakeups) << label;
  EXPECT_EQ(a.counters.forks, b.counters.forks) << label;
  EXPECT_EQ(a.counters.exits, b.counters.exits) << label;
  EXPECT_EQ(a.counters.pickcpu_scans, b.counters.pickcpu_scans) << label;
  EXPECT_EQ(a.counters.balance_invocations, b.counters.balance_invocations) << label;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.counters.overhead_ns[i], b.counters.overhead_ns[i]) << label << " bucket " << i;
  }
  EXPECT_EQ(a.elision.ticks_fired, b.elision.ticks_fired) << label;
  EXPECT_EQ(a.elision.ticks_elided, b.elision.ticks_elided) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.cpus, b.cpus) << label;
}

// A fully-loaded box of pinned pure-compute spinners: every event stream is
// core-local, so the sharded engine must actually run parallel windows — and
// still produce byte-identical counters.
TEST(MachineShardTest, ParallelWindowsEngageAndMatchSerial) {
  const WorkloadFn spinners = [](Machine& machine, SimEngine&) {
    std::vector<SimThread*> threads;
    for (CoreId c = 0; c < 128; ++c) {
      threads.push_back(machine.Spawn(Spinner("spin", c + 1, c), nullptr));
    }
    return threads;
  };
  for (const char* sched : {"cfs", "ule"}) {
    for (bool tickless : {true, false}) {
      const std::string label =
          std::string(sched) + (tickless ? "/tickless" : "/ticking");
      const RunResult serial =
          RunWorkload(sched, 128, 1, tickless, Seconds(1), spinners);
      const RunResult sharded =
          RunWorkload(sched, 128, 2, tickless, Seconds(1), spinners);
      EXPECT_EQ(serial.windows.windows, 0u) << label;
      EXPECT_GT(sharded.windows.windows, 0u)
          << label << ": the parallel-window path never engaged, so this run "
          << "only exercised the merge path";
      // The spinners synchronize on 5ms completion boundaries, so same-
      // nanosecond cross-lane ties DO occur and are resolved by block order
      // instead of insertion order; the identity check below is what proves
      // the gate's commutation guarantee held through every one of them.
      ExpectIdenticalRuns(serial, sharded, label);
    }
  }
}

// Wakeups colliding with ticks at the shard boundary: nappers pinned to the
// boundary cores (63 and 64) sleep in whole-millisecond multiples, so their
// timer wakeups (global lane) land on the exact timestamps of those cores'
// ticks (shard lanes). Any tie-ordering slip between lanes changes preemption
// decisions and shows up in the counters. Shards=4 on 128 cores is NOT
// word-aligned, so that leg pins the always-serialized merge regime too.
TEST(MachineShardTest, BoundaryWakeTickCollisionsMatchSerial) {
  const WorkloadFn boundary = [](Machine& machine, SimEngine&) {
    std::vector<SimThread*> threads;
    for (CoreId c = 0; c < 128; ++c) {
      threads.push_back(machine.Spawn(Spinner("spin", c + 1, c), nullptr));
    }
    for (CoreId c : {63, 64}) {
      ThreadSpec spec;
      spec.name = "napper" + std::to_string(c);
      spec.affinity = CpuMask::Single(c);
      spec.body = MakeScriptBody(ScriptBuilder()
                                     .Loop(-1)
                                     .Compute(Milliseconds(1))
                                     .Sleep(Milliseconds(2))
                                     .EndLoop()
                                     .Build(),
                                 Rng(1000 + c));
      threads.push_back(machine.Spawn(std::move(spec), nullptr));
    }
    return threads;
  };
  for (const char* sched : {"cfs", "ule"}) {
    const RunResult serial = RunWorkload(sched, 128, 1, true, Seconds(1), boundary);
    const RunResult two = RunWorkload(sched, 128, 2, true, Seconds(1), boundary);
    const RunResult four = RunWorkload(sched, 128, 4, true, Seconds(1), boundary);
    ExpectIdenticalRuns(serial, two, std::string(sched) + "/2-shard");
    ExpectIdenticalRuns(serial, four, std::string(sched) + "/4-shard");
  }
}

// The balancer spanning shards: all load starts in shard 0 (two spinners per
// core on cores 0..63), cores 64..127 empty. At t=1ms every spinner's
// affinity widens to the whole box, and migration decisions — wake placement,
// idle steal, periodic balance — must move work across the shard boundary in
// exactly the same order as the single-queue engine.
TEST(MachineShardTest, BalancerSpanningShardsMatchesSerial) {
  const WorkloadFn imbalanced = [](Machine& machine, SimEngine& engine) {
    auto threads = std::make_shared<std::vector<SimThread*>>();
    for (int i = 0; i < 128; ++i) {
      threads->push_back(machine.Spawn(Spinner("spin", i + 1, i % 64), nullptr));
    }
    Machine* m = &machine;
    engine.At(Milliseconds(1), [m, threads] {
      for (SimThread* t : *threads) {
        m->SetAffinity(t, CpuMask::AllOf(128));
      }
    });
    return *threads;
  };
  for (const char* sched : {"cfs", "ule"}) {
    const RunResult serial =
        RunWorkload(sched, 128, 1, true, Milliseconds(500), imbalanced);
    const RunResult sharded =
        RunWorkload(sched, 128, 2, true, Milliseconds(500), imbalanced);
    ExpectIdenticalRuns(serial, sharded, sched);
    // The scenario is only meaningful if work actually crossed the boundary.
    int high = 0;
    for (int cpu : sharded.cpus) {
      high += cpu >= 64 ? 1 : 0;
    }
    EXPECT_GT(high, 0) << sched << ": no thread ever crossed the shard boundary";
  }
}

}  // namespace
}  // namespace schedbattle
