// Dynamic renice (Machine::SetNice) tests for both schedulers.
#include <gtest/gtest.h>

#include "src/cfs/cfs_sched.h"
#include "src/ule/interact.h"
#include "src/ule/tdq.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"

namespace schedbattle {
namespace {

TEST(ReniceTest, CfsSharesFollowNiceChange) {
  SimEngine engine;
  CfsTunables tun;
  tun.group_scheduling = false;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>(tun));
  machine.Boot();
  auto script = ScriptBuilder().Compute(Seconds(60)).Build();
  ThreadSpec a, b;
  a.name = "a";
  a.body = MakeScriptBody(script, Rng(1));
  b.name = "b";
  b.body = MakeScriptBody(script, Rng(2));
  SimThread* ta = machine.Spawn(std::move(a), nullptr);
  SimThread* tb = machine.Spawn(std::move(b), nullptr);

  engine.RunUntil(Seconds(5));
  const double ra1 = ToSeconds(ta->RuntimeAt(engine.now()));
  EXPECT_NEAR(ra1, 2.5, 0.3) << "equal nice: equal shares";

  machine.SetNice(tb, 10);  // b becomes much lighter
  engine.RunUntil(Seconds(15));
  // Over the 10s window, a (nice 0, weight 1024) vs b (nice 10, weight 110):
  // a should get ~90%.
  const double da = ToSeconds(ta->RuntimeAt(engine.now())) - ra1;
  EXPECT_GT(da, 8.0);
  EXPECT_LT(da, 9.7);
}

TEST(ReniceTest, UleNicenessReclassifiesThread) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  // A moderately sleepy thread: score ~20, interactive at nice 0.
  ThreadSpec spec;
  spec.name = "t";
  spec.parent_runtime_hint = Milliseconds(400);
  spec.parent_sleep_hint = Milliseconds(1000);
  spec.body = MakeScriptBody(ScriptBuilder()
                                 .Loop(-1)
                                 .Compute(Milliseconds(2))
                                 .Sleep(Milliseconds(5))
                                 .EndLoop()
                                 .Build(),
                             Rng(1));
  SimThread* t = machine.Spawn(std::move(spec), nullptr);
  engine.RunUntil(Seconds(2));
  const UleTaskData& data = UleOf(t);
  const int score = UleInteractScore(data.interact);
  ASSERT_LT(score, kInteractThresh);
  ASSERT_LE(data.pri, kPriMaxInteract) << "interactive at nice 0";

  machine.SetNice(t, 15);  // push the score past the threshold
  engine.RunUntil(Seconds(2) + Milliseconds(200));
  EXPECT_GE(UleOf(t).pri, kPriMinBatch) << "niceness reclassifies to batch";

  machine.SetNice(t, -10);
  engine.RunUntil(Seconds(3));
  EXPECT_LE(UleOf(t).pri, kPriMaxInteract) << "negative nice restores interactive";
}

TEST(ReniceTest, ReniceQueuedThreadRepositionsIt) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  auto script = ScriptBuilder().Compute(Seconds(30)).Build();
  std::vector<SimThread*> hogs;
  for (int i = 0; i < 3; ++i) {
    ThreadSpec spec;
    spec.name = "h" + std::to_string(i);
    spec.body = MakeScriptBody(script, Rng(i + 1));
    hogs.push_back(machine.Spawn(std::move(spec), nullptr));
  }
  engine.RunUntil(Seconds(3));
  // Renice a (likely queued) hog; nothing should crash and its priority must
  // reflect the new niceness immediately.
  machine.SetNice(hogs[2], 19);
  engine.RunUntil(Seconds(3) + Milliseconds(100));
  EXPECT_GE(UleOf(hogs[2]).pri, kPriMinBatch);
  engine.RunUntil(Seconds(6));
  // With nice 19 it keeps running (no starvation among batch), just slower
  // priority positioning; sanity: all still alive and progressing.
  EXPECT_GT(hogs[2]->RuntimeAt(engine.now()), Seconds(1));
}

TEST(ReniceTest, NoopWhenNiceUnchanged) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<CfsScheduler>());
  machine.Boot();
  ThreadSpec spec;
  spec.name = "t";
  spec.body = MakeScriptBody(ScriptBuilder().Compute(Milliseconds(10)).Build(), Rng(1));
  SimThread* t = machine.Spawn(std::move(spec), nullptr);
  machine.SetNice(t, 0);  // same value: no-op
  engine.RunUntil(Seconds(1));
  EXPECT_EQ(t->state(), ThreadState::kDead);
}

}  // namespace
}  // namespace schedbattle
