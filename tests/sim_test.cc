// Engine, event queue and RNG tests.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace schedbattle {
namespace {

TEST(EventQueueTest, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(2); });
  q.Schedule(5, [&] { order.push_back(1); });
  q.Schedule(10, [&] { order.push_back(3); });  // same time: insertion order
  SimTime t = 0;
  while (!q.empty()) {
    q.PopNext(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(t, 10);
}

TEST(EventQueueTest, CancelPreventsDelivery) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.Schedule(5, [&] { ++fired; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kTimeNever);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.Schedule(5, [] {});
  SimTime t = 0;
  q.PopNext(&t)();
  EXPECT_FALSE(q.Cancel(h));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1, [&] { order.push_back(1); });
  EventHandle h = q.Schedule(2, [&] { order.push_back(2); });
  q.Schedule(3, [&] { order.push_back(3); });
  q.Cancel(h);
  SimTime t = 0;
  while (!q.empty()) {
    q.PopNext(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SimEngineTest, RunUntilAdvancesClock) {
  SimEngine e;
  int fired = 0;
  e.After(Milliseconds(5), [&] { ++fired; });
  e.After(Milliseconds(15), [&] { ++fired; });
  e.RunUntil(Milliseconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), Milliseconds(10));
  e.RunUntil(Milliseconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, EventsCanScheduleEvents) {
  SimEngine e;
  std::vector<SimTime> times;
  e.After(1, [&] {
    times.push_back(e.now());
    e.After(1, [&] { times.push_back(e.now()); });
  });
  e.RunToCompletion();
  EXPECT_EQ(times, (std::vector<SimTime>{1, 2}));
}

TEST(SimEngineTest, RequestStopHaltsRun) {
  SimEngine e;
  int fired = 0;
  e.After(1, [&] {
    ++fired;
    e.RequestStop();
  });
  e.After(2, [&] { ++fired; });
  e.RunUntil(Milliseconds(1));
  EXPECT_EQ(fired, 1);
  e.RunUntil(Milliseconds(1));
  EXPECT_EQ(fired, 2);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng a(1);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Milliseconds(1), 1000 * Microseconds(1));
  EXPECT_EQ(Seconds(1), 1000 * Milliseconds(1));
  EXPECT_DOUBLE_EQ(ToSeconds(Milliseconds(1500)), 1.5);
  EXPECT_EQ(SecondsF(0.5), Milliseconds(500));
  EXPECT_EQ(FormatTime(Milliseconds(1234)), "1.234s");
}

}  // namespace
}  // namespace schedbattle
