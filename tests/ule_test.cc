// ULE unit tests: interactivity scoring, history decay, priorities, the
// bitmap runqueue and calendar queue, plus behavioural starvation tests
// through the full machine.
#include <gtest/gtest.h>

#include "src/ule/interact.h"
#include "src/ule/runq.h"
#include "src/ule/tdq.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"
#include "src/workload/workload.h"

namespace schedbattle {
namespace {

// ---- interactivity scoring (paper Section 2.2 formula) ----

TEST(InteractTest, PureSleeperScoresZero) {
  UleInteract h{.runtime = 0, .slptime = Seconds(4)};
  EXPECT_EQ(UleInteractScore(h), 0);
}

TEST(InteractTest, PureRunnerScoresNearMax) {
  UleInteract h{.runtime = Seconds(4), .slptime = 0};
  EXPECT_GE(UleInteractScore(h), 99);
  EXPECT_LE(UleInteractScore(h), kInteractMax);
}

TEST(InteractTest, EqualRunAndSleepScoresHalf) {
  UleInteract h{.runtime = Seconds(1), .slptime = Seconds(1)};
  EXPECT_EQ(UleInteractScore(h), kInteractHalf);
}

TEST(InteractTest, FreshThreadScoresZero) {
  UleInteract h;
  EXPECT_EQ(UleInteractScore(h), 0);
}

TEST(InteractTest, FormulaMatchesPaper) {
  // s > r: penalty = m * r / s.
  UleInteract sleepy{.runtime = Seconds(1), .slptime = Seconds(4)};
  EXPECT_EQ(UleInteractScore(sleepy), 50 * 1 / 4);
  // r > s: penalty = 100 - m * s / r.
  UleInteract runny{.runtime = Seconds(4), .slptime = Seconds(1)};
  EXPECT_EQ(UleInteractScore(runny), 100 - 50 * 1 / 4);
}

TEST(InteractTest, ScoreIsMonotoneInRuntime) {
  int prev = -1;
  for (int r = 0; r <= 40; ++r) {
    UleInteract h{.runtime = Milliseconds(r * 100), .slptime = Seconds(2)};
    const int score = UleInteractScore(h);
    EXPECT_GE(score, prev) << "runtime " << r;
    prev = score;
  }
}

TEST(InteractTest, UpdateCapsHistoryAtWindow) {
  UleInteract h{.runtime = Seconds(4), .slptime = Seconds(3)};
  const int score_before = UleInteractScore(h);
  UleInteractUpdate(&h);
  EXPECT_LE(h.runtime + h.slptime, kSlpRunMax + kSecond);
  // Decay approximately preserves the ratio (and hence the score).
  EXPECT_NEAR(UleInteractScore(h), score_before, 4);
}

TEST(InteractTest, UpdateClampsExtremeHistory) {
  UleInteract h{.runtime = Seconds(30), .slptime = Seconds(1)};
  UleInteractUpdate(&h);
  EXPECT_EQ(h.runtime, kSlpRunMax);
  EXPECT_EQ(h.slptime, 1);
  UleInteract h2{.runtime = Seconds(1), .slptime = Seconds(30)};
  UleInteractUpdate(&h2);
  EXPECT_EQ(h2.slptime, kSlpRunMax);
  EXPECT_EQ(h2.runtime, 1);
}

TEST(InteractTest, ForkScalesDownToForkCap) {
  UleInteract child{.runtime = Seconds(4), .slptime = Seconds(4)};
  UleInteractFork(&child);
  EXPECT_LE(child.runtime + child.slptime, kSlpRunFork + kSecond);
  // Ratio (score) preserved.
  EXPECT_EQ(UleInteractScore(child), kInteractHalf);
}

TEST(InteractTest, NicenessShiftsClassification) {
  UleInteract h{.runtime = Seconds(1), .slptime = Seconds(2)};  // score 25
  EXPECT_TRUE(UleIsInteractive(h, 0));
  EXPECT_FALSE(UleIsInteractive(h, 10));  // 25 + 10 = 35 >= 30
  EXPECT_TRUE(UleIsInteractive(h, -20));
}

// ---- runq ----

TEST(UleRunqTest, ChoosesHighestPriorityFifo) {
  UleRunq q;
  ThreadSpec s1, s2, s3;
  s1.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(1));
  s2.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(2));
  s3.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(3));
  SimThread a(1, std::move(s1)), b(2, std::move(s2)), c(3, std::move(s3));
  q.Add(&a, 10);
  q.Add(&b, 5);
  q.Add(&c, 5);
  EXPECT_EQ(q.Choose(), &b) << "lowest index wins; FIFO within the index";
  q.Remove(&b, 5);
  EXPECT_EQ(q.Choose(), &c);
  q.Remove(&c, 5);
  EXPECT_EQ(q.Choose(), &a);
  q.Remove(&a, 10);
  EXPECT_TRUE(q.empty());
}

TEST(UleRunqTest, ChooseFromWrapsCircularly) {
  UleRunq q;
  ThreadSpec s1, s2;
  s1.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(1));
  s2.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(2));
  SimThread a(1, std::move(s1)), b(2, std::move(s2));
  q.Add(&a, 3);
  q.Add(&b, 60);
  int idx = -1;
  EXPECT_EQ(q.ChooseFrom(50, &idx), &b);  // 60 is the first set >= 50
  EXPECT_EQ(idx, 60);
  EXPECT_EQ(q.ChooseFrom(61, &idx), &a);  // wraps to 3
  EXPECT_EQ(idx, 3);
  EXPECT_EQ(q.ChooseFrom(0, &idx), &a);
}

TEST(UleRunqTest, FirstSetIndex) {
  UleRunq q;
  EXPECT_EQ(q.FirstSetIndex(), kRqNqs);
  ThreadSpec s1;
  s1.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(1));
  SimThread a(1, std::move(s1));
  q.Add(&a, 17);
  EXPECT_EQ(q.FirstSetIndex(), 17);
}

// ---- priority computation ----

TEST(UlePriorityTest, InteractiveRangeIsLinearInScore) {
  UleTaskData data;
  data.interact = {.runtime = 0, .slptime = Seconds(4)};  // score 0
  EXPECT_EQ(UleComputePriority(data, 0, 0), kPriMinInteract);
  data.interact = {.runtime = Milliseconds(1450), .slptime = Milliseconds(2500)};  // ~score 29
  const int pri = UleComputePriority(data, 0, 0);
  EXPECT_GT(pri, kPriMinInteract + kPriInteractRange / 2);
  EXPECT_LE(pri, kPriMaxInteract);
}

TEST(UlePriorityTest, BatchPriorityReflectsRecentCpu) {
  UleTaskData hot;
  hot.interact = {.runtime = Seconds(4), .slptime = Milliseconds(1)};  // batch
  hot.ftick = 0;
  hot.ltick = Seconds(10);
  hot.window_run = Seconds(10);  // 100% cpu
  UleTaskData cold = hot;
  cold.window_run = Milliseconds(100);  // ~1% cpu
  const int hot_pri = UleComputePriority(hot, 0, Seconds(10));
  const int cold_pri = UleComputePriority(cold, 0, Seconds(10));
  EXPECT_GT(hot_pri, cold_pri) << "more %CPU => numerically worse priority";
  EXPECT_GE(cold_pri, kPriMinBatch);
  EXPECT_LE(hot_pri, kPriMaxBatch);
}

TEST(UlePriorityTest, NicenessShiftsBatchPriority) {
  UleTaskData d;
  d.interact = {.runtime = Seconds(4), .slptime = Milliseconds(1)};
  d.ftick = 0;
  d.ltick = Seconds(10);
  d.window_run = Seconds(5);
  const int base = UleComputePriority(d, 0, Seconds(10));
  EXPECT_EQ(UleComputePriority(d, 5, Seconds(10)), base + 5);
  EXPECT_EQ(UleComputePriority(d, -5, Seconds(10)), base - 5);
}

// ---- tdq ----

TEST(TdqTest, InteractiveBeatsBatchAlways) {
  Tdq tdq;
  ThreadSpec s1, s2;
  s1.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(1));
  s2.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(2));
  SimThread inter(1, std::move(s1)), batch(2, std::move(s2));
  auto di = std::make_unique<UleTaskData>();
  di->pri = kPriMaxInteract;  // worst interactive
  inter.set_sched_data(std::move(di));
  auto db = std::make_unique<UleTaskData>();
  db->pri = kPriMinBatch;  // best batch
  batch.set_sched_data(std::move(db));
  TdqRunqAdd(&tdq, &batch, false);
  TdqRunqAdd(&tdq, &inter, false);
  EXPECT_EQ(TdqChoose(&tdq), &inter)
      << "interactive threads have absolute priority over batch threads";
}

TEST(TdqTest, CalendarSpreadsBatchByPriority) {
  Tdq tdq;
  ThreadSpec s1, s2;
  s1.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(1));
  s2.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(2));
  SimThread good(1, std::move(s1)), bad(2, std::move(s2));
  auto dg = std::make_unique<UleTaskData>();
  dg->pri = kPriMinBatch;
  good.set_sched_data(std::move(dg));
  auto db = std::make_unique<UleTaskData>();
  db->pri = kPriMaxBatch;
  bad.set_sched_data(std::move(db));
  TdqRunqAdd(&tdq, &bad, false);
  TdqRunqAdd(&tdq, &good, false);
  // Different calendar slots; the low-runtime thread is nearer the head.
  EXPECT_NE(UleOf(&good).rq_idx, UleOf(&bad).rq_idx);
  EXPECT_EQ(TdqChoose(&tdq), &good);
}

TEST(TdqTest, LowpriTracksBest) {
  Tdq tdq;
  EXPECT_EQ(tdq.lowpri, kPriIdle);
  ThreadSpec s1;
  s1.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(1));
  SimThread t(1, std::move(s1));
  auto d = std::make_unique<UleTaskData>();
  d->pri = kPriMinInteract + 8;
  t.set_sched_data(std::move(d));
  TdqRunqAdd(&tdq, &t, false);
  EXPECT_LE(tdq.lowpri, kPriMinInteract + 8);
  TdqRunqRem(&tdq, &t);
  TdqUpdateLowpri(&tdq, kPriIdle);
  EXPECT_EQ(tdq.lowpri, kPriIdle);
}

// ---- behavioural tests through the machine ----

TEST(UleBehaviorTest, InteractiveThreadsStarveBatch) {
  // One spinner + enough interactive handlers to saturate the core: the
  // spinner must make (almost) no progress while they run (paper 5.1).
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  ThreadSpec spin;
  spin.name = "spin";
  spin.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(30)).Build(), Rng(1));
  SimThread* spinner = machine.Spawn(std::move(spin), nullptr);
  engine.RunUntil(Seconds(8));  // spinner accrues penalty, becomes batch
  const SimDuration before = spinner->RuntimeAt(engine.now());
  auto handler_script = ScriptBuilder()
                            .Loop(-1)
                            .SleepFn([](ScriptEnv& env) {
                              return static_cast<SimDuration>(env.rng.NextExponential(2.0e6));
                            })
                            .ComputeFn([](ScriptEnv& env) {
                              return static_cast<SimDuration>(env.rng.NextExponential(1.2e6));
                            })
                            .EndLoop()
                            .Build();
  for (int i = 0; i < 10; ++i) {
    ThreadSpec h;
    h.name = "h" + std::to_string(i);
    h.parent_sleep_hint = Seconds(4);
    h.body = MakeScriptBody(handler_script, Rng(100 + i));
    machine.Spawn(std::move(h), nullptr);
  }
  engine.RunUntil(Seconds(18));
  const SimDuration after = spinner->RuntimeAt(engine.now());
  EXPECT_LT(ToSeconds(after - before), 0.5)
      << "batch spinner should be starved by interactive handlers";
}

TEST(UleBehaviorTest, BatchThreadsShareFairly) {
  // Two spinners: the batch calendar must round-robin them ~50/50.
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  auto script = ScriptBuilder().Compute(Seconds(20)).Build();
  ThreadSpec a, b;
  a.name = "a";
  a.body = MakeScriptBody(script, Rng(1));
  b.name = "b";
  b.body = MakeScriptBody(script, Rng(2));
  SimThread* ta = machine.Spawn(std::move(a), nullptr);
  SimThread* tb = machine.Spawn(std::move(b), nullptr);
  engine.RunUntil(Seconds(10));
  EXPECT_NEAR(ToSeconds(ta->RuntimeAt(engine.now())), 5.0, 0.6);
  EXPECT_NEAR(ToSeconds(tb->RuntimeAt(engine.now())), 5.0, 0.6);
}

TEST(UleBehaviorTest, NoWakeupPreemption) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  ThreadSpec hog;
  hog.name = "hog";
  hog.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(5)).Build(), Rng(1));
  machine.Spawn(std::move(hog), nullptr);
  ThreadSpec sleeper;
  sleeper.name = "sleeper";
  sleeper.body = MakeScriptBody(
      ScriptBuilder().Loop(50).Sleep(Milliseconds(20)).Compute(Milliseconds(1)).EndLoop().Build(),
      Rng(2));
  machine.Spawn(std::move(sleeper), nullptr);
  engine.RunUntil(Seconds(4));
  EXPECT_EQ(machine.counters().wakeup_preemptions, 0u)
      << "full preemption is disabled in ULE";
}

TEST(UleBehaviorTest, AblationEnablesWakeupPreemption) {
  SimEngine engine;
  UleTunables tun;
  tun.wakeup_preemption = true;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>(tun));
  machine.Boot();
  ThreadSpec hog;
  hog.name = "hog";
  hog.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(5)).Build(), Rng(1));
  machine.Spawn(std::move(hog), nullptr);
  ThreadSpec sleeper;
  sleeper.name = "sleeper";
  sleeper.parent_sleep_hint = Seconds(4);
  sleeper.body = MakeScriptBody(
      ScriptBuilder().Loop(50).Sleep(Milliseconds(20)).Compute(Milliseconds(1)).EndLoop().Build(),
      Rng(2));
  machine.Spawn(std::move(sleeper), nullptr);
  engine.RunUntil(Seconds(4));
  EXPECT_GT(machine.counters().wakeup_preemptions, 20u);
}

TEST(UleBehaviorTest, ForkInheritanceMakesChildrenOfHogsBatch) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(1), std::make_unique<UleScheduler>());
  machine.Boot();
  // Parent computes 4s then forks a child; the child inherits a batch score.
  SimThread* child = nullptr;
  auto parent_script =
      ScriptBuilder()
          .Compute(Seconds(4))
          .Call([&machine, &child](ScriptEnv& env) {
            ThreadSpec spec;
            spec.name = "child";
            spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(1)).Build(), Rng(9));
            child = machine.Spawn(std::move(spec), &env.ctx.thread());
          })
          .Build();
  ThreadSpec parent;
  parent.name = "parent";
  parent.parent_runtime_hint = Milliseconds(50);
  parent.parent_sleep_hint = Milliseconds(200);
  parent.body = MakeScriptBody(parent_script, Rng(1));
  machine.Spawn(std::move(parent), nullptr);
  engine.RunUntil(Seconds(4) + Milliseconds(200));
  ASSERT_NE(child, nullptr);
  EXPECT_GE(machine.scheduler().InteractivityPenaltyOf(child), kInteractThresh)
      << "child of a CPU hog inherits a batch-level penalty";
}

TEST(UleBehaviorTest, ExitReturnsRuntimeToParent) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<UleScheduler>());
  machine.Boot();
  // An interactive parent forks a hog child; when the child exits, its
  // runtime lands back on the parent, penalizing it (paper 2.2).
  SimThread* parent_thread = nullptr;
  auto parent_script =
      ScriptBuilder()
          .Call([&machine, &parent_thread](ScriptEnv& env) {
            parent_thread = &env.ctx.thread();
            ThreadSpec spec;
            spec.name = "hog-child";
            spec.body = MakeScriptBody(ScriptBuilder().Compute(Seconds(3)).Build(), Rng(5));
            machine.Spawn(std::move(spec), &env.ctx.thread());
          })
          .Loop(200)
          .Sleep(Milliseconds(40))
          .Compute(Microseconds(200))
          .EndLoop()
          .Build();
  ThreadSpec parent;
  parent.name = "parent";
  parent.parent_sleep_hint = Seconds(4);
  parent.body = MakeScriptBody(parent_script, Rng(1));
  machine.Spawn(std::move(parent), nullptr);
  engine.RunUntil(Seconds(2));
  ASSERT_NE(parent_thread, nullptr);
  const int penalty_before = machine.scheduler().InteractivityPenaltyOf(parent_thread);
  EXPECT_LT(penalty_before, kInteractThresh);
  engine.RunUntil(Seconds(4));  // child exits around t=3
  const int penalty_after = machine.scheduler().InteractivityPenaltyOf(parent_thread);
  EXPECT_GT(penalty_after, penalty_before + 10)
      << "the child's runtime must be charged back to the parent";
}

TEST(UleBehaviorTest, IdleStealTakesExactlyOneThread) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(2), std::make_unique<UleScheduler>());
  machine.Boot();
  // 4 spinners pinned to core 0, then unpinned: core 1 steals exactly one.
  std::vector<SimThread*> threads;
  for (int i = 0; i < 4; ++i) {
    ThreadSpec spec;
    spec.name = "s" + std::to_string(i);
    spec.affinity = CpuMask::Single(0);
    spec.body = MakeScriptBody(ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build(),
                               Rng(i + 1));
    threads.push_back(machine.Spawn(std::move(spec), nullptr));
  }
  engine.At(Milliseconds(100), [&] {
    for (SimThread* t : threads) {
      machine.SetAffinity(t, CpuMask::AllOf(2));
    }
  });
  engine.RunUntil(Milliseconds(100) + Milliseconds(50));
  int on_core1 = 0;
  for (SimThread* t : threads) {
    if (t->cpu() == 1) {
      ++on_core1;
    }
  }
  EXPECT_EQ(on_core1, 1) << "tdq_idled steals at most one thread";
}

}  // namespace
}  // namespace schedbattle
