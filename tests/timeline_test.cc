// TimelineSet tests: the per-thread lifecycle reconstruction folded out of a
// DecisionLog must tile each thread's lifetime exactly (no gaps, no overlap)
// and its aggregate totals must agree with the independently-collected
// SchedStats histograms — the acceptance bar for `schedbattle_cli scope`.
#include "src/metrics/thread_timeline.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/metrics/decision_log.h"
#include "src/metrics/schedstats.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

constexpr SimTime kHorizon = Milliseconds(120);

// A two-core machine with both the decision log and schedstats attached, so
// the timeline fold can be cross-checked against an independent observer.
struct TimelineRun {
  SimEngine engine;
  Machine machine;
  DecisionLog log;
  SchedStats stats;

  explicit TimelineRun(const std::string& sched)
      : machine(&engine, CpuTopology::Flat(2), MakeScheduler(sched)),
        log(&machine),
        stats(&machine) {
    machine.Boot();
  }

  void SpawnMix() {
    // One pinned hog (keeps core 0 saturated, so wakers see real runqueue
    // waits) plus sleep/compute threads that generate wake->dispatch pairs,
    // preemptions, and cross-core steals.
    machine.Spawn(Spinner("hog", 1, /*pin=*/0), nullptr);
    for (int i = 0; i < 4; ++i) {
      ThreadSpec spec;
      spec.name = "w" + std::to_string(i);
      spec.body = MakeScriptBody(ScriptBuilder()
                                     .Loop(30)
                                     .Compute(Microseconds(400))
                                     .Sleep(Microseconds(300))
                                     .EndLoop()
                                     .Build(),
                                 Rng(i + 2));
      machine.Spawn(std::move(spec), nullptr);
    }
  }

  TimelineSet Finish() {
    engine.RunUntil(kHorizon);
    log.Detach();
    stats.Detach();
    return TimelineSet(log, machine.now());
  }
};

TEST(TimelineTest, SegmentsPartitionEachThreadsLifetime) {
  for (const char* sched : {"cfs", "ule"}) {
    TimelineRun run(sched);
    run.SpawnMix();
    const TimelineSet timelines = run.Finish();
    ASSERT_GT(timelines.timelines().size(), 0u) << sched;

    for (const auto& [id, tl] : timelines.timelines()) {
      ASSERT_FALSE(tl.segments.empty()) << sched << " tid " << id;
      // All threads here are forked after the observer attached, so the
      // timeline starts at the fork record.
      ASSERT_GE(tl.born, 0) << sched << " tid " << id;
      EXPECT_EQ(tl.segments.front().start, tl.born) << sched << " tid " << id;

      // Contiguous tiling: each segment starts where the previous ended.
      SimDuration summed = 0;
      for (size_t i = 0; i < tl.segments.size(); ++i) {
        const TimelineSegment& s = tl.segments[i];
        EXPECT_LE(s.start, s.end) << sched << " tid " << id << " seg " << i;
        if (i > 0) {
          EXPECT_EQ(s.start, tl.segments[i - 1].end)
              << sched << " tid " << id << " gap before seg " << i;
        }
        summed += s.duration();
      }

      // The tiling covers the whole lifetime, and the per-state totals are
      // exactly the segment durations re-bucketed.
      const SimTime last = tl.exited >= 0 ? tl.exited : run.machine.now();
      EXPECT_EQ(tl.segments.back().end, last) << sched << " tid " << id;
      EXPECT_EQ(summed, last - tl.born) << sched << " tid " << id;
      EXPECT_EQ(tl.total_running + tl.total_runnable + tl.total_blocked, summed)
          << sched << " tid " << id;
    }
  }
}

TEST(TimelineTest, WakeLatencyTotalsMatchSchedStats) {
  for (const char* sched : {"cfs", "ule"}) {
    TimelineRun run(sched);
    run.SpawnMix();
    const TimelineSet timelines = run.Finish();

    // The fold mirrors SchedStats' pairing rule (fork-to-first-dispatch goes
    // to the fork histogram, not the wakeup one), so the totals must agree
    // to the nanosecond — this is the scope-vs-schedstats acceptance check.
    ASSERT_GT(run.stats.wakeup_latency().count(), 0u) << sched;
    EXPECT_EQ(timelines.TotalWakeCount(), run.stats.wakeup_latency().count()) << sched;
    EXPECT_EQ(timelines.TotalWakeLatency(), run.stats.wakeup_latency().Sum()) << sched;
  }
}

TEST(TimelineTest, DispatchAndMigrationCountsMatchTheRawLog) {
  for (const char* sched : {"cfs", "ule"}) {
    TimelineRun run(sched);
    run.SpawnMix();
    const TimelineSet timelines = run.Finish();

    std::map<ThreadId, uint64_t> dispatches;
    std::map<ThreadId, size_t> migrations;
    for (size_t i = 0; i < run.log.size(); ++i) {
      const DecisionRecord& r = run.log.at(i);
      if (r.type == DecisionRecord::Type::kDispatch) {
        ++dispatches[r.life.thread];
      } else if (r.type == DecisionRecord::Type::kMigrate) {
        ++migrations[r.life.thread];
      }
    }
    for (const auto& [id, tl] : timelines.timelines()) {
      EXPECT_EQ(tl.dispatches, dispatches[id]) << sched << " tid " << id;
      EXPECT_EQ(tl.migrations.size(), migrations[id]) << sched << " tid " << id;
    }
  }
}

TEST(TimelineTest, TotalRunningNeverExceedsMachineBusyTime) {
  for (const char* sched : {"cfs", "ule"}) {
    TimelineRun run(sched);
    run.SpawnMix();
    const TimelineSet timelines = run.Finish();

    // Machine busy time additionally counts scheduler overhead windows
    // (context-switch and balance charges), so it upper-bounds the summed
    // on-cpu segment time but can never be below it.
    const SimDuration running = timelines.TotalRunning();
    ASSERT_GT(running, 0) << sched;
    EXPECT_LE(running, run.machine.TotalBusyTime()) << sched;
  }
}

TEST(TimelineTest, RenderOutputsNameThreadsAndStates) {
  TimelineRun run("ule");
  run.SpawnMix();
  const TimelineSet timelines = run.Finish();

  const std::string summary = timelines.RenderSummary(16);
  EXPECT_NE(summary.find("on-cpu"), std::string::npos);
  EXPECT_NE(summary.find("rq-wait"), std::string::npos);

  const ThreadId first = timelines.timelines().begin()->first;
  const std::string rendered = timelines.RenderThread(first, 8);
  EXPECT_NE(rendered.find("thread"), std::string::npos);
  EXPECT_NE(rendered.find("running"), std::string::npos);
  EXPECT_NE(rendered.find("dispatches"), std::string::npos);

  EXPECT_NE(timelines.RenderThread(987654, 8).find("not in log"), std::string::npos);
}

}  // namespace
}  // namespace schedbattle
