// Fuzzing infrastructure tests: FuzzSpec JSON round-trips byte-exactly,
// generated specs are valid and terminating, a seeded FaultySched violation
// shrinks to a tiny reproducer, and the reproducer re-triggers the same
// violation deterministically.
#include <gtest/gtest.h>

#include "src/check/fuzz.h"
#include "src/core/campaign.h"

namespace schedbattle {
namespace {

bool SameSpec(const FuzzSpec& a, const FuzzSpec& b) {
  if (a.seed != b.seed || a.sched != b.sched || a.cores != b.cores ||
      a.numa_nodes != b.numa_nodes || a.horizon != b.horizon ||
      a.fault.kind != b.fault.kind || a.fault.arg != b.fault.arg ||
      a.groups.size() != b.groups.size()) {
    return false;
  }
  for (size_t i = 0; i < a.groups.size(); ++i) {
    const FuzzThreadGroup& ga = a.groups[i];
    const FuzzThreadGroup& gb = b.groups[i];
    if (ga.kind != gb.kind || ga.count != gb.count || ga.work != gb.work ||
        ga.sleep != gb.sleep || ga.loops != gb.loops) {
      return false;
    }
  }
  return true;
}

// A small workload that reliably trips the monitors under kDropWakeup: the
// first sleeper wakeup is silently dropped, freezing that thread runnable
// forever while the machine drains — work_conservation fires by poll.
FuzzSpec DropWakeupSpec() {
  FuzzSpec spec;
  spec.seed = 11;
  spec.sched = SchedKind::kUle;
  spec.cores = 2;
  spec.horizon = Seconds(20);
  spec.fault = FaultConfig{FaultKind::kDropWakeup, 1};
  spec.groups.push_back(
      {FuzzThreadGroup::Kind::kSleeper, 3, Microseconds(500), Milliseconds(5), 10});
  spec.groups.push_back({FuzzThreadGroup::Kind::kHog, 4, Milliseconds(2), Milliseconds(1), 5});
  return spec;
}

TEST(FuzzSpecTest, JsonRoundTripsExactly) {
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    Rng stream = rng.Split();
    const FuzzSpec spec =
        GenerateFuzzSpec(&stream, i % 2 == 0 ? SchedKind::kCfs : SchedKind::kUle, 1.0);
    const std::string json = spec.ToJson();
    FuzzSpec parsed;
    std::string error;
    ASSERT_TRUE(FuzzSpec::Parse(json, &parsed, &error)) << error << "\n" << json;
    EXPECT_TRUE(SameSpec(spec, parsed)) << json;
    EXPECT_EQ(parsed.ToJson(), json) << "re-serialization must be byte-identical";
  }
}

TEST(FuzzSpecTest, LargeSeedsSurviveSerialization) {
  FuzzSpec spec = DropWakeupSpec();
  spec.seed = 0xFFFFFFFFFFFFFFFEull;  // would lose precision as a JSON double
  FuzzSpec parsed;
  std::string error;
  ASSERT_TRUE(FuzzSpec::Parse(spec.ToJson(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.seed, spec.seed);
}

TEST(FuzzSpecTest, ParseRejectsMalformedInput) {
  FuzzSpec out;
  std::string error;
  EXPECT_FALSE(FuzzSpec::Parse("", &out, &error));
  EXPECT_FALSE(FuzzSpec::Parse("{}", &out, &error));
  EXPECT_FALSE(FuzzSpec::Parse("{\"fuzz_spec\":2}", &out, &error));
  EXPECT_FALSE(FuzzSpec::Parse(DropWakeupSpec().ToJson() + "x", &out, &error));
}

// A fault corrupting a clock the wrapped class does not keep is rejected at
// parse time with a message naming the capable classes — silently no-opping
// would disarm the monitor the fault exists to validate.
TEST(FuzzSpecTest, ParseRejectsInapplicableFaults) {
  FuzzSpec spec = DropWakeupSpec();
  FuzzSpec out;
  std::string error;

  spec.sched = SchedKind::kMlfq;  // neither vruntime nor interactivity
  spec.fault = FaultConfig{FaultKind::kCorruptVruntime, 1};
  EXPECT_FALSE(FuzzSpec::Parse(spec.ToJson(), &out, &error));
  EXPECT_NE(error.find("mlfq"), std::string::npos) << error;
  EXPECT_NE(error.find("vruntime"), std::string::npos) << error;

  spec.fault = FaultConfig{FaultKind::kCorruptScore, 200};
  EXPECT_FALSE(FuzzSpec::Parse(spec.ToJson(), &out, &error));
  EXPECT_NE(error.find("interactivity"), std::string::npos) << error;

  // The same faults parse fine on classes that keep the corrupted state.
  spec.sched = SchedKind::kEevdf;
  spec.fault = FaultConfig{FaultKind::kCorruptVruntime, 1};
  EXPECT_TRUE(FuzzSpec::Parse(spec.ToJson(), &out, &error)) << error;
  spec.sched = SchedKind::kUle;
  spec.fault = FaultConfig{FaultKind::kCorruptScore, 200};
  EXPECT_TRUE(FuzzSpec::Parse(spec.ToJson(), &out, &error)) << error;

  // FaultApplicable is the same predicate spec parsing uses.
  std::string why;
  EXPECT_FALSE(FaultApplicable(FaultKind::kCorruptVruntime, SchedKind::kMlfq, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_TRUE(FaultApplicable(FaultKind::kCorruptVruntime, SchedKind::kCfs));
  EXPECT_TRUE(FaultApplicable(FaultKind::kDropWakeup, SchedKind::kMlfq));
}

TEST(FuzzSpecTest, GeneratedSpecsAreValidAndLabeled) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Rng stream = rng.Split();
    const FuzzSpec spec = GenerateFuzzSpec(&stream, SchedKind::kCfs, 0.5);
    EXPECT_GE(spec.TotalThreads(), 1);
    EXPECT_GE(spec.cores, 1);
    if (spec.numa_nodes > 1) {
      EXPECT_EQ(spec.cores % spec.numa_nodes, 0);
    }
    EXPECT_EQ(spec.Label().find("fuzz-cfs-seed"), 0u);
    EXPECT_EQ(spec.fault.kind, FaultKind::kNone);
  }
}

TEST(FuzzRunTest, CleanCampaignAcrossBothSchedulers) {
  Rng rng(5);
  std::vector<FuzzSpec> fuzz;
  std::vector<ExperimentSpec> specs;
  for (int i = 0; i < 4; ++i) {
    Rng stream = rng.Split();
    FuzzSpec base = GenerateFuzzSpec(&stream, SchedKind::kCfs, 0.1);
    for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
      FuzzSpec s = base;
      s.sched = kind;
      fuzz.push_back(s);
      specs.push_back(s.ToExperimentSpec());
    }
  }
  const std::vector<RunResult> results = CampaignRunner(2).Run(specs);
  ASSERT_EQ(results.size(), fuzz.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const FuzzOutcome out = OutcomeFromResult(results[i]);
    EXPECT_EQ(out.violations, 0u) << fuzz[i].Label() << "\n" << out.report;
    EXPECT_TRUE(out.all_finished) << fuzz[i].Label();
    EXPECT_EQ(out.forks, out.exits) << fuzz[i].Label();
  }
  // Differential: the same spec forks the same thread count on both
  // schedulers (workload structure is seed-determined).
  for (size_t i = 0; i < results.size(); i += 2) {
    EXPECT_EQ(OutcomeFromResult(results[i]).forks, OutcomeFromResult(results[i + 1]).forks);
  }
}

TEST(FuzzShrinkTest, SeededViolationShrinksToTinyReproducer) {
  const FuzzSpec failing = DropWakeupSpec();
  const FuzzOutcome original = RunFuzzSpec(failing);
  ASSERT_GT(original.violations, 0u);
  ASSERT_FALSE(original.monitor.empty());

  const ShrinkResult shrunk =
      ShrinkFuzzSpec(failing, MonitorFiresOracle(original.monitor));
  EXPECT_LE(shrunk.minimal.TotalThreads(), 3) << shrunk.minimal.ToJson();
  EXPECT_LT(shrunk.minimal.TotalThreads(), failing.TotalThreads());
  EXPECT_GT(shrunk.attempts, 0);

  // The minimal reproducer still fires the same monitor.
  const FuzzOutcome replay = RunFuzzSpec(shrunk.minimal);
  EXPECT_GT(replay.violations, 0u);
  EXPECT_EQ(replay.monitor, original.monitor);
}

TEST(FuzzShrinkTest, ReproducerReplaysDeterministically) {
  const FuzzSpec failing = DropWakeupSpec();
  const FuzzOutcome base = RunFuzzSpec(failing);
  ASSERT_GT(base.violations, 0u);

  // Round-trip through the reproducer JSON, then replay twice: identical
  // violation counts, monitor, and full report every time.
  FuzzSpec parsed;
  std::string error;
  ASSERT_TRUE(FuzzSpec::Parse(failing.ToJson(), &parsed, &error)) << error;
  const FuzzOutcome a = RunFuzzSpec(parsed);
  const FuzzOutcome b = RunFuzzSpec(parsed);
  EXPECT_EQ(a.violations, base.violations);
  EXPECT_EQ(a.monitor, base.monitor);
  EXPECT_EQ(a.report, base.report);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.monitor, b.monitor);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.forks, b.forks);
  EXPECT_EQ(a.exits, b.exits);
}

}  // namespace
}  // namespace schedbattle
