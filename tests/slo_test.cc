// SLO engine tests: LogHistogram bucket resolution, windowed tail series
// routing, objective parsing, end-to-end verdict evaluation through
// ExecuteSpec, and the committed fig1 schedstats golden file (the JSON
// export contract: any schema or accounting change must be intentional).
#include "src/metrics/slo.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/scenarios.h"
#include "tests/minijson.h"
#include "tests/test_util.h"

namespace schedbattle {
namespace {

TEST(LogHistogramTest, SmallValuesAreExact) {
  LogHistogram h;
  // Below kSubBuckets every integer has its own bucket, so percentiles are
  // exact nearest-rank order statistics.
  for (SimDuration v : {5, 1, 3, 2, 4}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_EQ(h.Percentile(50), 3);
  EXPECT_EQ(h.Percentile(100), 5);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(LogHistogramTest, ResolutionIsWithinOneSubBucket) {
  // One sub-bucket is 1/32 of an octave, so the reported lower bound is
  // never more than ~3.2% below the recorded value (and never above it).
  for (SimDuration v : {SimDuration{100}, SimDuration{12345}, SimDuration{987654},
                        SimDuration{123456789}, Seconds(3)}) {
    LogHistogram h;
    h.Record(v);
    const SimDuration p = h.Percentile(50);
    EXPECT_LE(p, v);
    EXPECT_GE(static_cast<double>(p), static_cast<double>(v) * (1.0 - 1.0 / 31.0))
        << "value " << v;
  }
}

TEST(LogHistogramTest, EmptyAndClearReportZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.Record(Milliseconds(1));
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(WindowedTailSeriesTest, RoutesSamplesIntoWindowsAndSkipsEmptyOnes) {
  WindowedTailSeries series(Milliseconds(100));
  series.Record(Milliseconds(10), Microseconds(100));
  series.Record(Milliseconds(50), Microseconds(200));
  series.Record(Milliseconds(150), Microseconds(300));
  series.Record(Milliseconds(350), Microseconds(400));  // window 2 stays empty

  const std::vector<TailWindow> rows = series.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].start, 0);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[1].start, Milliseconds(100));
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_EQ(rows[2].start, Milliseconds(300));
  EXPECT_EQ(rows[2].count, 1u);
  // Percentiles are lower-bounded bucket values; monotone within a window.
  EXPECT_LE(rows[0].p50, rows[0].p99);
  EXPECT_LE(rows[0].p99, rows[0].p999);

  const std::string json = series.ToJson();
  const minijson::Value parsed = minijson::Parser(json).Parse();
  (void)parsed;
  EXPECT_NE(json.find("\"start_ns\""), std::string::npos);
}

TEST(WindowedTailSeriesTest, OutOfOrderAndBoundaryRecordsLandInTheirWindows) {
  // Regression: Record() used to assume monotone time and only append, so a
  // sample for an earlier window (per-shard slabs folding at a window
  // barrier, app callbacks observing different clocks) silently polluted the
  // latest window. Out-of-order records must land in the window their
  // timestamp names, including exact-boundary timestamps.
  WindowedTailSeries series(Milliseconds(100));
  series.Record(Milliseconds(250), Microseconds(100));  // window 2 first
  series.Record(Milliseconds(50), Microseconds(200));   // then window 0
  series.Record(Milliseconds(150), Microseconds(300));  // then window 1
  series.Record(Milliseconds(100), Microseconds(400));  // boundary: window 1
  series.Record(Milliseconds(199), Microseconds(500));  // window 1 again
  series.Record(Milliseconds(250), Microseconds(600));  // back to window 2

  const std::vector<TailWindow> rows = series.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].start, 0);
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[1].start, Milliseconds(100));
  EXPECT_EQ(rows[1].count, 3u);
  EXPECT_EQ(rows[2].start, Milliseconds(200));
  EXPECT_EQ(rows[2].count, 2u);
}

TEST(WindowedTailSeriesTest, InOrderFastPathMatchesShuffledInsertion) {
  WindowedTailSeries ordered(Milliseconds(10));
  WindowedTailSeries shuffled(Milliseconds(10));
  const SimTime times[] = {Milliseconds(5),  Milliseconds(12), Milliseconds(25),
                           Milliseconds(38), Milliseconds(47), Milliseconds(55)};
  for (SimTime t : times) {
    ordered.Record(t, t);
  }
  const int order[] = {3, 0, 5, 2, 4, 1};
  for (int i : order) {
    shuffled.Record(times[i], times[i]);
  }
  EXPECT_EQ(ordered.ToJson(), shuffled.ToJson());
}

TEST(SloObjectiveTest, ParsesMetricsAndUnits) {
  const struct {
    const char* text;
    SloMetric metric;
    SimDuration threshold;
  } kCases[] = {
      {"wakeup_p50<100us", SloMetric::kWakeupP50, Microseconds(100)},
      {"wakeup_p90<2ms", SloMetric::kWakeupP90, Milliseconds(2)},
      {"wakeup_p99<5ms", SloMetric::kWakeupP99, Milliseconds(5)},
      {"wakeup_p999<1.5s", SloMetric::kWakeupP999, Milliseconds(1500)},
      {"wakeup_max<800ns", SloMetric::kWakeupMax, 800},
      {"wakeup_mean<250us", SloMetric::kWakeupMean, Microseconds(250)},
      {"fork_p99<1s", SloMetric::kForkP99, Seconds(1)},
      {"fork_p999<42", SloMetric::kForkP999, 42},  // bare count = nanoseconds
      {"request_p50<20ms", SloMetric::kRequestP50, Milliseconds(20)},
      {"request_p99<100ms", SloMetric::kRequestP99, Milliseconds(100)},
      {"request_p999<1s", SloMetric::kRequestP999, Seconds(1)},
      {"request_max<5s", SloMetric::kRequestMax, Seconds(5)},
      {"request_mean<10ms", SloMetric::kRequestMean, Milliseconds(10)},
  };
  for (const auto& c : kCases) {
    SloObjective obj;
    std::string error;
    ASSERT_TRUE(ParseSloObjective(c.text, &obj, &error)) << c.text << ": " << error;
    EXPECT_EQ(obj.metric, c.metric) << c.text;
    EXPECT_EQ(obj.threshold, c.threshold) << c.text;
    // Describe() must round-trip the metric name it was parsed from.
    EXPECT_NE(obj.Describe().find(SloMetricName(c.metric)), std::string::npos) << c.text;
  }
}

TEST(SloObjectiveTest, RequestMetricsAreClassified) {
  EXPECT_TRUE(IsRequestMetric(SloMetric::kRequestP50));
  EXPECT_TRUE(IsRequestMetric(SloMetric::kRequestP99));
  EXPECT_TRUE(IsRequestMetric(SloMetric::kRequestP999));
  EXPECT_TRUE(IsRequestMetric(SloMetric::kRequestMax));
  EXPECT_TRUE(IsRequestMetric(SloMetric::kRequestMean));
  EXPECT_FALSE(IsRequestMetric(SloMetric::kWakeupP99));
  EXPECT_FALSE(IsRequestMetric(SloMetric::kForkP999));
}

TEST(SloObjectiveTest, RejectsMalformedInput) {
  for (const char* text : {"bogus_p99<5ms", "wakeup_p99", "wakeup_p99<", "wakeup_p99<abc",
                           "<5ms", "wakeup_p99<5parsecs", ""}) {
    SloObjective obj;
    std::string error;
    EXPECT_FALSE(ParseSloObjective(text, &obj, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(SloEngineTest, ExecuteSpecEvaluatesObjectivesIntoTheResult) {
  ExperimentSpec spec = StatsSpec(SchedKind::kUle, 42);
  SloObjective loose, impossible;
  std::string error;
  ASSERT_TRUE(ParseSloObjective("wakeup_p99<10s", &loose, &error)) << error;
  ASSERT_TRUE(ParseSloObjective("wakeup_max<0", &impossible, &error)) << error;
  spec.slo = {loose, impossible};

  const RunResult r = ExecuteSpec(spec);
  ASSERT_EQ(r.slo_verdicts.size(), 2u);
  EXPECT_TRUE(r.slo_verdicts[0].pass);   // 10s bound on a 0.02-scale run
  EXPECT_FALSE(r.slo_verdicts[1].pass);  // nothing is < 0ns
  EXPECT_FALSE(r.slo_pass);
  EXPECT_FALSE(AllSlosPass(r.slo_verdicts));

  // The verdicts also land in the schedstats JSON "slo" section.
  ASSERT_FALSE(r.schedstats_json.empty());
  const minijson::Value stats = minijson::Parser(r.schedstats_json).Parse();
  ASSERT_TRUE(stats.contains("slo"));
  EXPECT_FALSE(stats.at("slo").at("pass").as_bool());

  const minijson::Value verdicts = minijson::Parser(SloVerdictsJson(r.slo_verdicts)).Parse();
  EXPECT_FALSE(verdicts.at("pass").as_bool());
}

TEST(SloEngineTest, VacuousPassWithNoObjectives) {
  const RunResult r = ExecuteSpec(StatsSpec(SchedKind::kCfs, 42));
  EXPECT_TRUE(r.slo_verdicts.empty());
  EXPECT_TRUE(r.slo_pass);
  EXPECT_TRUE(AllSlosPass(r.slo_verdicts));
}

// Drops the "tick_elision" counter line from a schedstats JSON document: it
// is the one line that legitimately differs between tickless modes, and this
// suite runs under both (SCHEDBATTLE_TICKLESS=off CI leg).
std::string StripTickElision(const std::string& json) {
  const size_t pos = json.find("\"tick_elision\"");
  if (pos == std::string::npos) {
    return json;
  }
  const size_t line_start = json.rfind('\n', pos) + 1;  // npos+1 == 0
  size_t line_end = json.find('\n', pos);
  line_end = line_end == std::string::npos ? json.size() : line_end + 1;
  return json.substr(0, line_start) + json.substr(line_end);
}

// The fig1 scenario's schedstats JSON, diffed against the committed golden
// file. Regenerate intentionally with:
//   REGEN_GOLDEN=1 ./schedbattle_tests --gtest_filter='*Fig1SchedstatsMatchesGolden*'
TEST(SloEngineTest, Fig1SchedstatsMatchesGoldenFile) {
  auto out = std::make_shared<FiboSysbenchResult>();
  ExperimentSpec spec = FiboSysbenchSpec(SchedKind::kCfs, 42, 0.02, out);
  spec.collect_schedstats = true;
  const RunResult r = ExecuteSpec(spec);
  ASSERT_FALSE(r.schedstats_json.empty());

  const std::string golden_path = std::string(GOLDEN_DIR) + "/fig1_schedstats.json";
  if (std::getenv("REGEN_GOLDEN") != nullptr) {
    std::ofstream f(golden_path, std::ios::binary);
    f << r.schedstats_json;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream f(golden_path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden file " << golden_path
                        << " (run with REGEN_GOLDEN=1 to create it)";
  std::ostringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(StripTickElision(r.schedstats_json), StripTickElision(buf.str()))
      << "fig1 schedstats JSON drifted from the committed golden file; if the "
         "change is intentional, regenerate with REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace schedbattle
