// Synchronization primitive tests, exercised through the full machine under
// both schedulers (the try/grant protocol only makes sense with real
// block/wake flows).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace schedbattle {
namespace {

class SyncTest : public ::testing::TestWithParam<std::string> {
 protected:
  void Build(int cores) {
    machine_ = std::make_unique<Machine>(&engine_, CpuTopology::Flat(cores),
                                         MakeScheduler(GetParam()));
    machine_->Boot();
  }
  SimThread* SpawnScript(std::shared_ptr<const Script> script, int seed,
                         const std::string& name = "t") {
    ThreadSpec spec;
    spec.name = name;
    spec.body = MakeScriptBody(std::move(script), Rng(seed));
    return machine_->Spawn(std::move(spec), nullptr);
  }
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
};

TEST_P(SyncTest, MutexFifoHandoff) {
  Build(1);
  auto mu = std::make_shared<SimMutex>();
  auto order = std::make_shared<std::vector<int>>();
  // Three threads contend; arrivals are strictly staggered by sleeps (sleep
  // ordering is scheduler-independent), and the holder sleeps inside the
  // critical section so the others queue up in arrival order.
  for (int i = 0; i < 3; ++i) {
    auto script = ScriptBuilder()
                      .Sleep(Milliseconds(1 + 2 * i))  // stagger arrivals
                      .Lock(mu.get())
                      .Call([order, i](ScriptEnv&) { order->push_back(i); })
                      .Sleep(Milliseconds(5))
                      .Unlock(mu.get())
                      .Build();
    SpawnScript(script, i, "locker" + std::to_string(i));
  }
  engine_.RunUntil(Seconds(1));
  ASSERT_EQ(order->size(), 3u);
  EXPECT_EQ(*order, (std::vector<int>{0, 1, 2})) << "FIFO handoff order";
}

TEST_P(SyncTest, SemaphoreCountsPermits) {
  Build(2);
  auto sem = std::make_shared<SimSemaphore>(2);
  auto in_section = std::make_shared<int>(0);
  auto max_in = std::make_shared<int>(0);
  for (int i = 0; i < 6; ++i) {
    auto script = ScriptBuilder()
                      .SemWait(sem.get())
                      .Call([in_section, max_in](ScriptEnv&) {
                        *max_in = std::max(*max_in, ++*in_section);
                      })
                      .Sleep(Milliseconds(2))
                      .Call([in_section](ScriptEnv&) { --*in_section; })
                      .SemPost(sem.get())
                      .Build();
    SpawnScript(script, i);
  }
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(machine_->alive_threads(), 0);
  EXPECT_EQ(*max_in, 2) << "at most two permits in flight";
}

TEST_P(SyncTest, SemaphorePostBeforeWaitDoesNotBlock) {
  Build(1);
  auto sem = std::make_shared<SimSemaphore>(0);
  auto poster = ScriptBuilder().SemPost(sem.get()).Build();
  auto waiter = ScriptBuilder().Compute(Milliseconds(5)).SemWait(sem.get()).Build();
  SpawnScript(poster, 1, "poster");
  SimThread* w = SpawnScript(waiter, 2, "waiter");
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(w->state(), ThreadState::kDead);
}

TEST_P(SyncTest, CyclicBarrierMultipleGenerations) {
  Build(2);
  auto bar = std::make_shared<SimBarrier>(2);
  auto rounds = std::make_shared<std::vector<int>>(2, 0);
  for (int i = 0; i < 2; ++i) {
    auto script = ScriptBuilder()
                      .Loop(5)
                      .ComputeFn([i](ScriptEnv& env) {
                        return Microseconds(100 + env.rng.NextBelow(200) + i * 37);
                      })
                      .Barrier(bar.get())
                      .Call([rounds, i](ScriptEnv&) { (*rounds)[i]++; })
                      .EndLoop()
                      .Build();
    SpawnScript(script, i);
  }
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ((*rounds)[0], 5);
  EXPECT_EQ((*rounds)[1], 5);
  EXPECT_EQ(machine_->alive_threads(), 0);
}

TEST_P(SyncTest, SpinBarrierFastPathNeverSleeps) {
  Build(2);
  auto bar = std::make_shared<SimSpinBarrier>(2);
  std::vector<SimThread*> threads;
  for (int i = 0; i < 2; ++i) {
    auto script = ScriptBuilder()
                      .Loop(10)
                      .Compute(Milliseconds(2))
                      .SpinBarrier(bar.get(), Microseconds(100), Milliseconds(50))
                      .EndLoop()
                      .Build();
    threads.push_back(SpawnScript(script, i));
  }
  engine_.RunUntil(Seconds(1));
  for (SimThread* t : threads) {
    EXPECT_EQ(t->state(), ThreadState::kDead);
    // Arrival spread ~0, spin budget 50ms: nobody should ever have slept.
    EXPECT_EQ(t->total_sleep, 0) << t->name();
  }
}

TEST_P(SyncTest, SpinBarrierSleepsWhenDelayExceedsBudget) {
  Build(2);
  auto bar = std::make_shared<SimSpinBarrier>(2);
  auto fast = ScriptBuilder()
                  .Compute(Milliseconds(1))
                  .SpinBarrier(bar.get(), Microseconds(100), Milliseconds(2))
                  .Build();
  auto slow = ScriptBuilder()
                  .Compute(Milliseconds(30))
                  .SpinBarrier(bar.get(), Microseconds(100), Milliseconds(2))
                  .Build();
  SimThread* tf = SpawnScript(fast, 1, "fast");
  SimThread* ts = SpawnScript(slow, 2, "slow");
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(tf->state(), ThreadState::kDead);
  EXPECT_EQ(ts->state(), ThreadState::kDead);
  EXPECT_GT(tf->total_sleep, Milliseconds(20)) << "fast arriver must sleep out the wait";
  EXPECT_EQ(ts->total_sleep, 0);
}

TEST_P(SyncTest, PipeBuffersWhenNoReaderWaits) {
  Build(1);
  auto pipe = std::make_shared<SimPipe>();
  auto writer = ScriptBuilder().PipeWrite(pipe.get(), 5).Build();
  SpawnScript(writer, 1, "writer");
  engine_.RunUntil(Milliseconds(100));
  EXPECT_EQ(pipe->available(), 5);
  auto reader = ScriptBuilder().Loop(5).PipeRead(pipe.get()).EndLoop().Build();
  SimThread* r = SpawnScript(reader, 2, "reader");
  engine_.RunUntil(Seconds(1));
  EXPECT_EQ(r->state(), ThreadState::kDead);
  EXPECT_EQ(pipe->available(), 0);
}

TEST_P(SyncTest, CascadingSemaphoreChain) {
  Build(2);
  const int n = 8;
  auto sems = std::make_shared<std::vector<std::unique_ptr<SimSemaphore>>>();
  for (int i = 0; i < n; ++i) {
    sems->push_back(std::make_unique<SimSemaphore>(i == 0 ? 1 : 0));
  }
  auto finish_order = std::make_shared<std::vector<int>>();
  for (int i = 0; i < n; ++i) {
    ScriptBuilder b;
    b.SemWait((*sems)[i].get());
    if (i + 1 < n) {
      b.SemPost((*sems)[i + 1].get());
    }
    b.Call([finish_order, i](ScriptEnv&) { finish_order->push_back(i); });
    auto script = b.Call([sems](ScriptEnv&) {}).Build();
    SpawnScript(script, i, "chain" + std::to_string(i));
  }
  engine_.RunUntil(Seconds(1));
  ASSERT_EQ(finish_order->size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ((*finish_order)[i], i) << "cascade wakes threads in order";
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SyncTest, ::testing::Values("cfs", "ule"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace schedbattle
