// Arrival-process unit tests: determinism, strict monotonicity, rate
// accuracy of the thinning sampler, and the diurnal/spike modulation shapes.
#include "src/workload/arrivals.h"

#include <gtest/gtest.h>

#include <vector>

namespace schedbattle {
namespace {

std::vector<SimTime> Draw(const ArrivalSpec& spec, SimTime until) {
  ArrivalProcess proc(spec);
  std::vector<SimTime> out;
  SimTime t = 0;
  for (;;) {
    t = proc.Next(t);
    if (t > until) {
      break;
    }
    out.push_back(t);
  }
  return out;
}

TEST(ArrivalsTest, KindNamesRoundTrip) {
  EXPECT_STREQ(ArrivalKindName(ArrivalKind::kPoisson), "poisson");
  EXPECT_STREQ(ArrivalKindName(ArrivalKind::kDiurnal), "diurnal");
  EXPECT_STREQ(ArrivalKindName(ArrivalKind::kSpike), "spike");
}

TEST(ArrivalsTest, SameSpecSameTrace) {
  ArrivalSpec spec;
  spec.rate_per_sec = 5000;
  spec.seed = 7;
  const std::vector<SimTime> a = Draw(spec, Seconds(1));
  const std::vector<SimTime> b = Draw(spec, Seconds(1));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ArrivalsTest, DifferentSeedsDifferentTraces) {
  ArrivalSpec a;
  a.rate_per_sec = 5000;
  a.seed = 1;
  ArrivalSpec b = a;
  b.seed = 2;
  EXPECT_NE(Draw(a, Seconds(1)), Draw(b, Seconds(1)));
}

TEST(ArrivalsTest, ArrivalsAreStrictlyIncreasing) {
  ArrivalSpec spec;
  spec.rate_per_sec = 2e6;  // mean gap 500ns: exercises the 1ns floor
  const std::vector<SimTime> trace = Draw(spec, Milliseconds(10));
  ASSERT_GT(trace.size(), 1000u);
  for (size_t i = 1; i < trace.size(); ++i) {
    ASSERT_LT(trace[i - 1], trace[i]);
  }
}

TEST(ArrivalsTest, PoissonRateIsAccurate) {
  ArrivalSpec spec;
  spec.rate_per_sec = 10000;
  spec.seed = 3;
  const std::vector<SimTime> trace = Draw(spec, Seconds(2));
  // 20000 expected arrivals; +-5% is ~7 standard deviations.
  EXPECT_NEAR(static_cast<double>(trace.size()), 20000.0, 1000.0);
}

TEST(ArrivalsTest, ZeroRateNeverFires) {
  ArrivalSpec spec;
  spec.rate_per_sec = 0;
  ArrivalProcess proc(spec);
  EXPECT_GT(proc.Next(0), Seconds(1000000));
}

TEST(ArrivalsTest, SpikeWindowMultipliesRate) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kSpike;
  spec.rate_per_sec = 10000;
  spec.spike_start = Seconds(1);
  spec.spike_duration = Seconds(1);
  spec.spike_multiplier = 3.0;
  EXPECT_DOUBLE_EQ(spec.RateAt(Milliseconds(500)), 10000.0);
  EXPECT_DOUBLE_EQ(spec.RateAt(Milliseconds(1500)), 30000.0);
  EXPECT_DOUBLE_EQ(spec.RateAt(Milliseconds(2500)), 10000.0);
  EXPECT_DOUBLE_EQ(spec.PeakRate(), 30000.0);

  const std::vector<SimTime> trace = Draw(spec, Seconds(3));
  int before = 0, during = 0, after = 0;
  for (SimTime t : trace) {
    if (t < spec.spike_start) {
      ++before;
    } else if (t < spec.spike_start + spec.spike_duration) {
      ++during;
    } else {
      ++after;
    }
  }
  // The spike second should hold ~3x the arrivals of the flanking seconds.
  EXPECT_GT(during, 2 * before);
  EXPECT_GT(during, 2 * after);
  EXPECT_NEAR(static_cast<double>(during), 30000.0, 1500.0);
}

TEST(ArrivalsTest, DiurnalTroughAndPeak) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_per_sec = 8000;
  spec.diurnal_period = Seconds(10);
  spec.trough_fraction = 0.25;
  // Phase 0 is the peak, phase pi (half a period) the trough.
  EXPECT_DOUBLE_EQ(spec.RateAt(0), 8000.0);
  EXPECT_NEAR(spec.RateAt(Seconds(5)), 2000.0, 1.0);
  EXPECT_DOUBLE_EQ(spec.PeakRate(), 8000.0);

  const std::vector<SimTime> trace = Draw(spec, Seconds(10));
  int near_peak = 0, near_trough = 0;
  for (SimTime t : trace) {
    if (t < Seconds(1)) {
      ++near_peak;
    } else if (t >= Seconds(4) && t < Seconds(5)) {
      ++near_trough;
    }
  }
  EXPECT_GT(near_peak, 2 * near_trough);
}

TEST(ArrivalsTest, NextAlwaysAdvancesPastAnyAnchor) {
  // Even from an arbitrary anchor (a restart, a clock far past the last
  // arrival) the next arrival is strictly in the future.
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kSpike;
  spec.rate_per_sec = 1000;
  spec.spike_start = Milliseconds(100);
  spec.spike_duration = Milliseconds(100);
  spec.seed = 11;
  ArrivalProcess proc(spec);
  for (SimTime anchor : {SimTime{0}, Milliseconds(150), Seconds(3), Seconds(60)}) {
    EXPECT_GT(proc.Next(anchor), anchor);
  }
}

}  // namespace
}  // namespace schedbattle
